"""Tests for the adaptive Pauli-term shot collector."""

import numpy as np
import pytest

from repro.engine import NoisyDensityMatrixEngine
from repro.exceptions import VQEError
from repro.operators import h2_hamiltonian, lih_hamiltonian, tfim_hamiltonian
from repro.vqe import AdaptiveShotCollector, ExpectationEstimator, allocate_shots


class TestAllocateShots:
    def test_totals_are_exact_for_arbitrary_weights(self):
        # Property: largest-remainder rounding never loses or invents a shot,
        # for any weight vector and any budget.
        rng = np.random.default_rng(3)
        for _ in range(200):
            num_groups = int(rng.integers(1, 12))
            budget = int(rng.integers(0, 5000))
            weights = rng.uniform(0.0, 10.0, size=num_groups)
            allocations = allocate_shots(budget, weights)
            assert sum(allocations) == max(budget, 0)
            assert all(shots >= 0 for shots in allocations)

    def test_high_weight_groups_get_at_least_uniform_share(self):
        # Property: a group whose weight is >= the mean weight receives at
        # least the uniform share budget // num_groups.
        rng = np.random.default_rng(5)
        for _ in range(200):
            num_groups = int(rng.integers(2, 10))
            budget = int(rng.integers(num_groups, 4000))
            weights = rng.uniform(0.0, 5.0, size=num_groups)
            mean_weight = float(np.mean(weights))
            allocations = allocate_shots(budget, weights)
            uniform_share = budget // num_groups
            for weight, shots in zip(weights, allocations):
                if weight >= mean_weight:
                    assert shots >= uniform_share

    def test_proportionality(self):
        allocations = allocate_shots(100, [3.0, 1.0])
        assert allocations == [75, 25]

    def test_zero_weights_fall_back_to_uniform(self):
        assert allocate_shots(9, [0.0, 0.0, 0.0]) == [3, 3, 3]

    def test_zero_budget(self):
        assert allocate_shots(0, [1.0, 2.0]) == [0, 0]

    def test_empty_weights_rejected(self):
        with pytest.raises(VQEError):
            allocate_shots(10, [])


@pytest.fixture(scope="module")
def h2_workload(device):
    """A measured, scheduled H2-scale circuit plus its seeded estimator."""
    import math

    from repro.circuits import efficient_su2
    from repro.simulators import NoiseModel
    from repro.transpiler import transpile

    hamiltonian = h2_hamiltonian()
    ansatz = efficient_su2(4, reps=1, entanglement="linear")
    rng = np.random.default_rng(9)
    bound = ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
    bound.measure_all()
    compiled = transpile(bound, device)
    noise_model = NoiseModel.from_device(device)
    engine = NoisyDensityMatrixEngine(noise_model, seed=11)
    estimator = ExpectationEstimator(noise_model, engine=engine)
    return estimator, compiled.scheduled, hamiltonian, engine


class TestAdaptiveShotCollector:
    def test_total_shots_equal_budget(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        result = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=2048, round_shots=256, seed=1
        ).collect()
        assert result.shots_used == 2048
        assert sum(result.shots_per_group) == 2048
        assert sum(sum(allocation) for allocation in result.round_allocations) == 2048

    def test_budget_not_divisible_by_round(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        result = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=1000, round_shots=300, seed=1
        ).collect()
        assert result.shots_used == 1000
        assert sum(result.shots_per_group) == 1000

    def test_high_variance_groups_get_at_least_uniform_share(self, h2_workload):
        # After the warm-up, Neyman allocation must grant every group with
        # above-average sampled stddev at least its uniform share per round.
        estimator, scheduled, hamiltonian, _ = h2_workload
        result = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=4096, round_shots=512, seed=1
        ).collect()
        num_groups = len(result.groups)
        stddevs = [np.sqrt(group.variance) for group in result.groups]
        mean_stddev = float(np.mean(stddevs))
        uniform_total = sum(
            sum(allocation) // num_groups for allocation in result.round_allocations
        )
        for stddev, shots in zip(stddevs, result.shots_per_group):
            if stddev >= mean_stddev:
                assert shots >= uniform_total

    def test_reproducible_for_fixed_seed(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        kwargs = dict(total_shots=1024, round_shots=256, seed=5)
        a = AdaptiveShotCollector(estimator, scheduled, hamiltonian, **kwargs).collect()
        b = AdaptiveShotCollector(estimator, scheduled, hamiltonian, **kwargs).collect()
        assert a.value == b.value
        assert a.stderr == b.stderr
        assert a.round_allocations == b.round_allocations

    def test_seed_changes_the_samples(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        a = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=1024, round_shots=256, seed=5
        ).collect()
        b = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=1024, round_shots=256, seed=6
        ).collect()
        assert a.value != b.value

    def test_estimate_near_exact_noisy_value(self, h2_workload):
        estimator, scheduled, hamiltonian, engine = h2_workload
        exact = engine.expectation(scheduled, hamiltonian)
        result = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=8192, seed=2
        ).collect()
        # Within five standard errors of the exact noisy expectation.
        assert abs(result.value - exact) < 5 * max(result.stderr, 1e-3)

    def test_target_stderr_stops_early(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        result = AdaptiveShotCollector(
            estimator,
            scheduled,
            hamiltonian,
            total_shots=1_000_000,
            round_shots=2048,
            target_stderr=0.05,
            seed=3,
        ).collect()
        assert result.stderr <= 0.05
        assert result.shots_used < 1_000_000

    def test_circuits_executed_counts_submissions(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        result = AdaptiveShotCollector(
            estimator, scheduled, hamiltonian, total_shots=1024, round_shots=256, seed=4
        ).collect()
        nonzero = sum(
            1
            for allocation in result.round_allocations
            for shots in allocation
            if shots > 0
        )
        assert result.circuits_executed == nonzero

    def test_lih_allocation_is_nonuniform(self, device):
        # The LiH surrogate's groups have strongly unequal variances; the
        # collector must exploit that rather than splitting evenly.
        import math

        from repro.circuits import efficient_su2
        from repro.simulators import NoiseModel
        from repro.transpiler import transpile

        hamiltonian = lih_hamiltonian()
        ansatz = efficient_su2(6, reps=1, entanglement="circular")
        rng = np.random.default_rng(5)
        bound = ansatz.bind_parameters(
            rng.uniform(-math.pi, math.pi, ansatz.num_parameters)
        )
        bound.measure_all()
        compiled = transpile(bound, device)
        noise_model = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise_model, seed=11)
        estimator = ExpectationEstimator(noise_model, engine=engine)
        result = AdaptiveShotCollector(
            estimator, compiled.scheduled, hamiltonian, total_shots=4096, seed=1
        ).collect()
        assert sum(result.shots_per_group) == 4096
        assert max(result.shots_per_group) > 2 * min(result.shots_per_group)

    def test_invalid_configuration(self, h2_workload):
        estimator, scheduled, hamiltonian, _ = h2_workload
        with pytest.raises(VQEError):
            AdaptiveShotCollector(estimator, scheduled, hamiltonian, total_shots=0)
        with pytest.raises(VQEError):
            AdaptiveShotCollector(
                estimator, scheduled, hamiltonian, total_shots=100, round_shots=2
            )
        identity_only = tfim_hamiltonian(4) * 0.0
        with pytest.raises(VQEError):
            AdaptiveShotCollector(estimator, scheduled, identity_only, total_shots=100)
