"""Unit tests for the external-program frontend (``repro.frontend``).

Pins every supported OpenQASM statement form, verifies every default
decomposition rule unitary-equivalent to its reference matrix, triggers
every :class:`ResourceLimits` cap individually, and exercises the JSON wire
format's strict validation (version gate, unknown fields, precise error
paths).  The adversarial/round-trip fuzz properties live in
``test_frontend_fuzz.py``; this file is the example-based complement.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.backends import get_device
from repro.circuits import QuantumCircuit
from repro.circuits.gates import (
    Barrier,
    Gate,
    standard_gate,
    _h_matrix,
    _p_matrix,
    _rx_matrix,
    _rz_matrix,
    _swap_matrix,
    _u3_matrix,
    _x_matrix,
    _y_matrix,
)
from repro.engine import FakeDeviceEngine, NoisyDensityMatrixEngine, StatevectorEngine
from repro.engine.fingerprint import circuit_fingerprint
from repro.exceptions import (
    CircuitError,
    DecompositionError,
    IngestError,
    ParameterError,
    ParseError,
    ResourceLimitError,
    TranspilerError,
    ValidationError,
)
from repro.frontend import (
    DEFAULT_RULES,
    Decomposer,
    DecompositionRule,
    IngestedProgram,
    ResourceLimits,
    circuit_from_json,
    circuit_to_json,
    circuit_to_qasm,
    compile_param_expression,
    ingest_json,
    ingest_qasm,
    parse_qasm,
    schedule_from_json,
    schedule_to_json,
)
from repro.frontend.decomposer import DEFAULT_NATIVE
from repro.transpiler.basis import unitaries_equal_up_to_phase
from repro.transpiler.scheduling import schedule_circuit

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def qasm(body: str) -> str:
    return HEADER + body


# ---------------------------------------------------------------------------
# Parser: every supported statement form
# ---------------------------------------------------------------------------

class TestQasmStatements:
    def test_registers_and_gate(self):
        circuit = parse_qasm(qasm("qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\n"))
        assert circuit.num_qubits == 2
        assert circuit.num_clbits == 2
        assert [inst.name for inst in circuit.instructions] == ["h", "cx"]
        assert circuit.instructions[1].qubits == (0, 1)

    def test_multiple_qregs_concatenate_in_order(self):
        circuit = parse_qasm(qasm("qreg a[2];\nqreg b[3];\nx a[1];\ny b[2];\n"))
        assert circuit.num_qubits == 5
        assert circuit.instructions[0].qubits == (1,)
        assert circuit.instructions[1].qubits == (4,)

    def test_parameter_expressions(self):
        circuit = parse_qasm(
            qasm("qreg q[1];\nrx(pi/2) q[0];\nrz(-pi/4) q[0];\n"
                 "p(3*pi/4) q[0];\nry(sin(0.5)) q[0];\nrx(2^-2) q[0];\n")
        )
        params = [inst.gate.params[0] for inst in circuit.instructions]
        assert params == [
            math.pi / 2, -(math.pi / 4), (3.0 * math.pi) / 4,
            math.sin(0.5), math.pow(2.0, -2.0),
        ]

    def test_u3_multi_parameter(self):
        circuit = parse_qasm(qasm("qreg q[1];\nu3(0.1, 0.2, 0.3) q[0];\n"))
        assert circuit.instructions[0].gate.params == (0.1, 0.2, 0.3)

    def test_spec_builtins_U_and_CX_map_to_u3_and_cx(self):
        # Valid without any include, per the OpenQASM 2.0 spec.
        circuit = parse_qasm("OPENQASM 2.0;\nqreg q[2];\nU(0.1,0.2,0.3) q[0];\nCX q[0], q[1];\n")
        assert [inst.name for inst in circuit.instructions] == ["u3", "cx"]

    def test_register_broadcast_single_gate(self):
        circuit = parse_qasm(qasm("qreg q[3];\nh q;\n"))
        assert [inst.qubits for inst in circuit.instructions] == [(0,), (1,), (2,)]

    def test_register_broadcast_two_qubit(self):
        circuit = parse_qasm(qasm("qreg a[2];\nqreg b[2];\ncx a, b;\n"))
        assert [inst.qubits for inst in circuit.instructions] == [(0, 2), (1, 3)]

    def test_broadcast_register_against_single_qubit(self):
        circuit = parse_qasm(qasm("qreg q[2];\nqreg t[1];\ncx q, t[0];\n"))
        assert [inst.qubits for inst in circuit.instructions] == [(0, 2), (1, 2)]

    def test_measure_single_and_register(self):
        circuit = parse_qasm(
            qasm("qreg q[2];\ncreg c[2];\nmeasure q[1] -> c[0];\nmeasure q -> c;\n")
        )
        assert circuit.measured_qubits() == [(1, 0), (0, 0), (1, 1)]

    def test_barrier_forms(self):
        circuit = parse_qasm(qasm("qreg q[3];\nbarrier q;\nbarrier q[0], q[2];\n"))
        assert circuit.instructions[0].qubits == (0, 1, 2)
        assert circuit.instructions[1].qubits == (0, 2)

    def test_delay_extension(self):
        circuit = parse_qasm(qasm("qreg q[1];\ndelay(160.0) q[0];\n"))
        assert circuit.instructions[0].name == "delay"
        assert circuit.instructions[0].gate.params == (160.0,)

    def test_gate_macro_fixed(self):
        circuit = parse_qasm(
            qasm("gate bell a, b { h a; cx a, b; }\nqreg q[2];\nbell q[1], q[0];\n")
        )
        assert [(inst.name, inst.qubits) for inst in circuit.instructions] == [
            ("h", (1,)), ("cx", (1, 0)),
        ]

    def test_gate_macro_parameterized(self):
        circuit = parse_qasm(
            qasm("gate rot(t) a { rz(t/2) a; rx(-t) a; }\nqreg q[1];\nrot(pi) q[0];\n")
        )
        assert circuit.instructions[0].gate.params == (math.pi / 2,)
        assert circuit.instructions[1].gate.params == (-math.pi,)

    def test_macro_calling_macro(self):
        circuit = parse_qasm(
            qasm("gate inner a { x a; }\ngate outer a, b { inner a; inner b; }\n"
                 "qreg q[2];\nouter q[0], q[1];\n")
        )
        assert [inst.qubits for inst in circuit.instructions] == [(0,), (1,)]

    def test_macro_with_barrier_body(self):
        circuit = parse_qasm(
            qasm("gate g a, b { h a; barrier a, b; h b; }\nqreg q[2];\ng q[0], q[1];\n")
        )
        assert [inst.name for inst in circuit.instructions] == ["h", "barrier", "h"]

    def test_comments_and_whitespace(self):
        circuit = parse_qasm(
            "// leading comment\nOPENQASM 2.0; // trailing\n"
            'include "qelib1.inc";\n\n\t qreg q[1];\n x q[0]; // done\n'
        )
        assert circuit.instructions[0].name == "x"

    def test_ingest_metadata_counters(self):
        circuit = parse_qasm(qasm("gate g a { h a; }\nqreg q[1];\ng q[0];\nx q[0];\n"))
        info = circuit.metadata["ingest"]
        assert info["macro_definitions"] == 1
        assert info["macro_expansions"] == 1
        assert info["raw_instructions"] == 2


class TestQasmRejections:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("qreg q[1];", "OPENQASM"),
            ("OPENQASM 3.0;\nqreg q[1];", "version"),
            ('OPENQASM 2.0;\ninclude "other.inc";', "qelib1.inc"),
            (HEADER + "qreg q[1];\nreset q[0];", "reset"),
            (HEADER + "qreg q[1];\ncreg c[1];\nif (c==1) x q[0];", "if"),
            (HEADER + "opaque magic a;", "opaque"),
            (HEADER + "qreg q[1];\nfoo q[0];", "unknown gate"),
            (HEADER + "qreg q[1];\nh q[3];", "out of range"),
            (HEADER + "qreg q[1];\nh r[0];", "undeclared"),
            (HEADER + "qreg q[2];\ncx q[0], q[0];", "duplicate"),
            (HEADER + "qreg q[1];\nrx() q[0];", "expects 1 parameter"),
            (HEADER + "qreg q[1];\nrx(1.0, 2.0) q[0];", "parameter"),
            (HEADER + "qreg q[1];\ncx q[0];", "qubit argument"),
            (HEADER + "qreg q[1];\nh q[0]", "expected"),
            (HEADER + "qreg q[0];", "positive"),
            (HEADER + "qreg q[1];\nqreg q[1];", "already declared"),
            (HEADER + "qreg q[1];\nrx(1/0) q[0];", "cannot evaluate"),
            (HEADER + 'include "unterminated', "unterminated"),
            (HEADER + "qreg q[1];\nx q[0]; \x00", "unexpected character"),
            (HEADER + "creg c[2];", "no quantum register"),
            (HEADER + "gate g a { h b; }", "not a qubit parameter"),
            (HEADER + "gate g a { zz a; }", "unknown gate"),
            (HEADER + "gate h a { x a; }", "already defined"),
            (HEADER + "qreg q[2];\ncreg c[1];\nmeasure q -> c;", "maps 2 qubit"),
        ],
    )
    def test_rejected_with_parse_error(self, source, fragment):
        with pytest.raises(ParseError) as excinfo:
            parse_qasm(source)
        assert fragment.lower() in str(excinfo.value).lower()
        assert excinfo.value.line is not None

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_qasm(HEADER + "qreg q[1];\nbogus q[0];\n")
        assert excinfo.value.line == 4
        assert excinfo.value.column == 1
        assert "line 4, column 1" in str(excinfo.value)

    def test_non_string_input(self):
        with pytest.raises(ParseError):
            parse_qasm(b"OPENQASM 2.0;")


# ---------------------------------------------------------------------------
# Emitter round trip
# ---------------------------------------------------------------------------

class TestEmitter:
    def test_round_trip_is_content_identical(self):
        circuit = QuantumCircuit(3, 3, name="native")
        circuit.h(0)
        circuit.rx(0.12345678901234567, 1)
        circuit.rzz(-2.5, 0, 2)
        circuit.delay(120.0, 1)
        circuit.barrier(0, 1)
        circuit.measure_all()
        rebuilt = parse_qasm(circuit_to_qasm(circuit))
        assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)

    def test_unbound_parameters_rejected(self):
        from repro.circuits.parameter import Parameter

        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("theta"), 0)
        with pytest.raises(ValidationError, match="theta"):
            circuit_to_qasm(circuit)

    def test_non_finite_parameter_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.rx(float("nan"), 0)
        with pytest.raises(ValidationError, match="non-finite"):
            circuit_to_qasm(circuit)


# ---------------------------------------------------------------------------
# Decomposer: every rule unitary-equivalent to its reference
# ---------------------------------------------------------------------------

def _controlled(block: np.ndarray, controls: int = 1) -> np.ndarray:
    dim = block.shape[0] * (2 ** controls)
    out = np.eye(dim, dtype=complex)
    out[-block.shape[0]:, -block.shape[0]:] = block
    return out


_THETA, _PHI, _LAM = 0.731, -1.2, 2.41

_RULE_REFERENCES = {
    "u": ((_THETA, _PHI, _LAM), 1, _u3_matrix(_THETA, _PHI, _LAM)),
    "u1": ((_LAM,), 1, _p_matrix(_LAM)),
    "u2": ((_PHI, _LAM), 1, _u3_matrix(math.pi / 2, _PHI, _LAM)),
    "cy": ((), 2, _controlled(_y_matrix())),
    "ch": ((), 2, _controlled(_h_matrix())),
    "crx": ((_LAM,), 2, _controlled(_rx_matrix(_LAM))),
    "crz": ((_LAM,), 2, _controlled(_rz_matrix(_LAM))),
    "cp": ((_LAM,), 2, _controlled(_p_matrix(_LAM))),
    "cu1": ((_LAM,), 2, _controlled(_p_matrix(_LAM))),
    "cu3": ((_THETA, _PHI, _LAM), 2, _controlled(_u3_matrix(_THETA, _PHI, _LAM))),
    "ccx": ((), 3, _controlled(_x_matrix(), controls=2)),
    "cswap": ((), 3, _controlled(_swap_matrix())),
    "swap": ((), 2, _swap_matrix()),
    "cz": ((), 2, _controlled(np.diag([1, -1]).astype(complex))),
}


class TestDecomposer:
    @pytest.mark.parametrize("rule", DEFAULT_RULES, ids=lambda r: r.name)
    def test_every_default_rule_is_unitary_equivalent(self, rule):
        params, arity, reference = _RULE_REFERENCES[rule.name]
        # Shrink the native set so even natively-supported gates (swap, cz)
        # actually expand through their rule.
        decomposer = Decomposer(native=sorted(DEFAULT_NATIVE - {rule.name}))
        circuit = QuantumCircuit(arity)
        for name, step_params, qubits in decomposer.expand(rule.name, params, tuple(range(arity))):
            circuit.append(standard_gate(name, *step_params), qubits)
        assert all(inst.name in DEFAULT_NATIVE for inst in circuit.instructions)
        assert unitaries_equal_up_to_phase(circuit.to_unitary(), reference)

    def test_every_reference_is_pinned(self):
        assert {rule.name for rule in DEFAULT_RULES} == set(_RULE_REFERENCES)

    def test_native_gate_passes_through(self):
        assert Decomposer.default().expand("h", (), (3,)) == [("h", (), (3,))]

    def test_unknown_gate_raises(self):
        with pytest.raises(DecompositionError, match="no decomposition rule"):
            Decomposer.default().expand("magic", (), (0,))

    def test_wrong_param_count_raises(self):
        with pytest.raises(DecompositionError, match="parameter"):
            Decomposer.default().expand("crz", (), (0, 1))

    def test_wrong_arity_raises(self):
        with pytest.raises(DecompositionError, match="qubit"):
            Decomposer.default().expand("ccx", (), (0, 1))

    def test_rule_cycle_raises(self):
        looping = (
            DecompositionRule("a", 1, (), (("b", (), (0,)),)),
            DecompositionRule("b", 1, (), (("a", (), (0,)),)),
        )
        decomposer = Decomposer(rules=looping, native=("x",))
        with pytest.raises(DecompositionError, match="depth"):
            decomposer.expand("a", (), (0,))

    def test_duplicate_rule_raises(self):
        rule = DecompositionRule("dup", 1, (), (("x", (), (0,)),))
        with pytest.raises(DecompositionError, match="duplicate"):
            Decomposer(rules=(rule, rule))

    def test_bad_rule_expression_raises(self):
        rule = DecompositionRule("bad", 1, ("t",), (("rx", ("t +",), (0,)),))
        with pytest.raises(DecompositionError, match="expression"):
            Decomposer(rules=(rule,))

    def test_custom_native_set_routes_through_rules(self):
        decomposer = Decomposer(native=sorted(DEFAULT_NATIVE - {"swap"}))
        expansion = decomposer.expand("swap", (), (0, 1))
        assert [step[0] for step in expansion] == ["cx", "cx", "cx"]

    def test_expression_compiler_rejects_unknown_names(self):
        with pytest.raises(ParseError, match="unknown name"):
            compile_param_expression("theta + zeta", ("theta",))


# ---------------------------------------------------------------------------
# ResourceLimits: every cap triggers its specific exception
# ---------------------------------------------------------------------------

class TestResourceLimits:
    def _limit_error(self, excinfo, name):
        assert isinstance(excinfo.value, ResourceLimitError)
        assert excinfo.value.limit_name == name

    def test_max_qubits(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            parse_qasm(qasm("qreg q[5];"), limits=ResourceLimits(max_qubits=4))
        self._limit_error(excinfo, "max_qubits")

    def test_max_clbits(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            parse_qasm(qasm("qreg q[1];\ncreg c[9];"), limits=ResourceLimits(max_clbits=8))
        self._limit_error(excinfo, "max_clbits")

    def test_max_instructions(self):
        limits = ResourceLimits(max_instructions=3)
        with pytest.raises(ResourceLimitError) as excinfo:
            parse_qasm(qasm("qreg q[1];\nx q[0];\nx q[0];\nx q[0];\nx q[0];"), limits=limits)
        self._limit_error(excinfo, "max_instructions")

    def test_max_depth(self):
        circuit = QuantumCircuit(1)
        for _ in range(5):
            circuit.x(0)
        with pytest.raises(ResourceLimitError) as excinfo:
            ResourceLimits(max_depth=4).validate_circuit(circuit)
        self._limit_error(excinfo, "max_depth")

    def test_max_shots(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            ingest_qasm(qasm("qreg q[1];\nx q[0];"), shots=2_000_000)
        self._limit_error(excinfo, "max_shots")

    def test_invalid_shots_is_validation_error(self):
        with pytest.raises(ValidationError, match="positive integer"):
            ResourceLimits().check_shots(0)

    def test_max_macro_depth(self):
        lines = ["gate g0 a { x a; }"]
        for level in range(1, 20):
            lines.append(f"gate g{level} a {{ g{level - 1} a; }}")
        lines += ["qreg q[1];", "g19 q[0];"]
        with pytest.raises(ResourceLimitError) as excinfo:
            parse_qasm(qasm("\n".join(lines)), limits=ResourceLimits(max_macro_depth=8))
        self._limit_error(excinfo, "max_macro_depth")

    def test_max_expanded_instructions(self):
        # Exponential blow-up through nested macros must hit the cap, not RAM.
        lines = ["gate g0 a, b { x a; x b; }"]
        for level in range(1, 20):
            lines.append(f"gate g{level} a, b {{ g{level-1} a, b; g{level-1} b, a; }}")
        lines += ["qreg q[2];", "g19 q[0], q[1];"]
        limits = ResourceLimits(max_expanded_instructions=10_000, max_macro_depth=64)
        with pytest.raises(ResourceLimitError) as excinfo:
            parse_qasm(qasm("\n".join(lines)), limits=limits)
        self._limit_error(excinfo, "max_expanded_instructions")

    def test_max_source_bytes(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            parse_qasm("x" * 100, limits=ResourceLimits(max_source_bytes=10))
        self._limit_error(excinfo, "max_source_bytes")

    def test_non_finite_parameter_is_validation_error(self):
        with pytest.raises(ValidationError, match="non-finite"):
            parse_qasm(qasm("qreg q[1];\nrx(1e400) q[0];"))

    def test_unrestricted_passes_wide_circuit(self):
        circuit = parse_qasm(qasm("qreg q[20];\nh q;"), limits=ResourceLimits.unrestricted())
        assert circuit.num_qubits == 20

    def test_limit_error_is_ingest_and_validation_error(self):
        error = ResourceLimitError("x", limit_name="max_qubits", limit=1, actual=2)
        assert isinstance(error, ValidationError)
        assert isinstance(error, IngestError)


# ---------------------------------------------------------------------------
# JSON wire format
# ---------------------------------------------------------------------------

class TestJsonFormat:
    def _bell(self):
        circuit = QuantumCircuit(2, 2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure_all()
        return circuit

    def test_circuit_round_trip(self):
        circuit = self._bell()
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)
        assert rebuilt.name == "bell"

    def test_version_mismatch_rejected_clearly(self):
        document = json.loads(circuit_to_json(self._bell()))
        document["version"] = 2
        with pytest.raises(ValidationError) as excinfo:
            circuit_from_json(document)
        message = str(excinfo.value)
        assert "unsupported format version 2" in message
        assert "supports version 1" in message

    def test_format_mismatch_rejected(self):
        document = json.loads(circuit_to_json(self._bell()))
        document["format"] = "repro-schedule"
        with pytest.raises(ValidationError, match="format"):
            circuit_from_json(document)

    def test_unknown_field_rejected(self):
        document = json.loads(circuit_to_json(self._bell()))
        document["exploit"] = True
        with pytest.raises(ValidationError, match="unknown field.*exploit"):
            circuit_from_json(document)

    def test_error_message_carries_instruction_path(self):
        document = json.loads(circuit_to_json(self._bell()))
        document["instructions"][1]["qubits"] = [0, 9]
        with pytest.raises(ValidationError, match=r"instructions\[1\].qubits\[1\]"):
            circuit_from_json(document)

    def test_not_json_rejected(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            circuit_from_json("{nope")

    def test_non_object_root_rejected(self):
        with pytest.raises(ValidationError, match="root"):
            circuit_from_json("[1, 2]")

    def test_bad_gate_name_rejected(self):
        document = json.loads(circuit_to_json(self._bell()))
        document["instructions"][0]["gate"] = "warp"
        with pytest.raises(ValidationError, match="warp"):
            circuit_from_json(document)

    def test_decomposer_expands_non_native_gates(self):
        document = {
            "format": "repro-circuit", "version": 1, "num_qubits": 3,
            "instructions": [{"gate": "ccx", "qubits": [0, 1, 2]}],
        }
        circuit = circuit_from_json(document, decomposer=Decomposer.default())
        assert circuit.count_ops()["cx"] == 6

    def test_schedule_round_trip_with_device_object(self):
        device = get_device("fake_casablanca", seed=5)
        scheduled = schedule_circuit(self._bell(), device)
        document = schedule_to_json(scheduled)
        rebuilt = schedule_from_json(document, device=device)
        assert rebuilt.num_qubits == scheduled.num_qubits
        assert rebuilt.physical_qubits == scheduled.physical_qubits
        assert len(rebuilt.timed_instructions) == len(scheduled.timed_instructions)
        for a, b in zip(rebuilt.sorted_instructions(), scheduled.sorted_instructions()):
            assert a.instruction == b.instruction
            assert a.start_ns == b.start_ns and a.duration_ns == b.duration_ns

    def test_schedule_device_by_name(self):
        scheduled = schedule_circuit(self._bell(), get_device("fake_casablanca"))
        rebuilt = schedule_from_json(schedule_to_json(scheduled))
        assert rebuilt.device.name == "fake_casablanca"

    def test_schedule_unknown_device_rejected(self):
        scheduled = schedule_circuit(self._bell(), get_device("fake_casablanca"))
        document = json.loads(schedule_to_json(scheduled))
        document["device"] = "ibmq_made_up"
        with pytest.raises(ValidationError, match="device"):
            schedule_from_json(document)

    def test_schedule_negative_timing_rejected(self):
        scheduled = schedule_circuit(self._bell(), get_device("fake_casablanca"))
        document = json.loads(schedule_to_json(scheduled))
        document["instructions"][0]["start_ns"] = -1.0
        with pytest.raises(ValidationError, match="negative timing"):
            schedule_from_json(document)

    def test_shots_field_validated(self):
        document = json.loads(circuit_to_json(self._bell()))
        document["shots"] = 10**9
        with pytest.raises(ResourceLimitError):
            circuit_from_json(document)


# ---------------------------------------------------------------------------
# Ingestion + engine wiring
# ---------------------------------------------------------------------------

class TestIngestion:
    SOURCE = qasm("qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q -> c;\n")

    def test_ingest_qasm_runs_on_statevector(self):
        program = ingest_qasm(self.SOURCE)
        engine = StatevectorEngine(seed=3)
        result = engine.run(program)
        np.testing.assert_allclose(result.probabilities, [0.5, 0.0, 0.0, 0.5], atol=1e-12)

    def test_engine_payload_kinds(self):
        program = ingest_qasm(self.SOURCE)
        statevector = StatevectorEngine()
        fake = FakeDeviceEngine("fake_casablanca", seed=2)
        assert statevector.program_input == "circuit"
        assert fake.program_input == "circuit"
        assert fake.noisy_engine.program_input == "scheduled"
        assert program.engine_payload(statevector) is program.circuit
        scheduled = program.engine_payload(fake.noisy_engine)
        assert scheduled.num_qubits == 2

    def test_ingested_program_equals_native_circuit_bits(self):
        program = ingest_qasm(self.SOURCE)
        native = QuantumCircuit(2, 2)
        native.h(0)
        native.cx(0, 1)
        native.measure(0, 0)
        native.measure(1, 1)
        engine = FakeDeviceEngine("fake_casablanca", seed=9)
        mine = engine.run(program)
        reference = engine.run(native)
        assert mine.fingerprint == reference.fingerprint
        assert mine.counts == reference.counts

    def test_submit_accepts_ingested_program(self):
        engine = StatevectorEngine(seed=4)
        program = ingest_qasm(self.SOURCE)
        future = engine.submit(program)
        np.testing.assert_array_equal(
            future.result().probabilities, engine.run(program.circuit).probabilities
        )
        engine.close()

    def test_ingest_json_schedule_needs_schedule_engine(self):
        device = get_device("fake_casablanca")
        scheduled = schedule_circuit(
            parse_qasm(self.SOURCE), device
        )
        program = ingest_json(schedule_to_json(scheduled), device=device)
        with pytest.raises(ValidationError, match="schedule-level"):
            program.engine_payload(StatevectorEngine())

    def test_ingest_stats_aggregate(self):
        from repro.frontend import IngestStats

        stats = IngestStats()
        stats.record(ingest_qasm(self.SOURCE))
        stats.record(ingest_qasm(self.SOURCE))
        payload = stats.as_dict()
        assert payload["programs"] == 2
        assert payload["instructions"] == 8
        assert payload["source_bytes"] > 0

    def test_ingest_unknown_json_format(self):
        with pytest.raises(ValidationError, match="repro-circuit"):
            ingest_json('{"format": "qpy", "version": 1}')

    def test_empty_program_rejected(self):
        with pytest.raises(ValidationError):
            IngestedProgram()


# ---------------------------------------------------------------------------
# Exception-hygiene regressions (bugs surfaced by the fuzz harness)
# ---------------------------------------------------------------------------

class TestExceptionHygiene:
    def test_gate_matrix_wrong_param_count_is_circuit_error(self):
        # Regression: Gate("ry", 1, ()) bypasses standard_gate validation and
        # _cached_matrix used to explode with a bare TypeError.
        with pytest.raises(CircuitError, match="expects 1 parameter"):
            Gate("ry", 1, ()).matrix()

    def test_gate_matrix_non_numeric_param_is_parameter_error(self):
        # Regression: float("junk") used to escape as a bare ValueError.
        with pytest.raises(ParameterError, match="non-numeric"):
            Gate("rx", 1, ("junk",)).matrix()

    def test_append_non_integer_qubit_is_circuit_error(self):
        # Regression: int("q0") used to escape _check_qubits as ValueError.
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="not an integer"):
            circuit.append(standard_gate("x"), ["q0"])

    def test_append_non_integer_clbit_is_circuit_error(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="not integers"):
            circuit.measure(0, "c0")

    def test_short_physical_qubits_is_transpiler_error(self):
        # Regression: a physical_qubits list shorter than the circuit used to
        # escape scheduling as a bare IndexError.
        circuit = QuantumCircuit(3)
        circuit.h(2)
        with pytest.raises(TranspilerError, match="physical_qubits"):
            schedule_circuit(circuit, get_device("fake_casablanca"), physical_qubits=[0, 1])
