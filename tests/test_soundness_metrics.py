"""Tests for the soundness properties (paper §V) and the fidelity metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ReproError, VAQEMError
from repro.metrics import (
    geometric_mean,
    hellinger_distance,
    hellinger_fidelity,
    state_fidelity,
    total_variation_distance,
)
from repro.operators import tfim_hamiltonian
from repro.simulators import DensityMatrix, depolarizing_kraus
from repro.vaqem import (
    check_energy_soundness,
    energy_gap_to_optimal,
    mixed_state_energy_bound,
    pure_state_energy_bound,
)


def _random_state(rng, dim):
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


class TestSoundness:
    def test_ground_state_saturates_property_one(self, tfim4):
        _, ground_state = tfim4.ground_state()
        assert pure_state_energy_bound(tfim4, ground_state)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_one_for_random_pure_states(self, seed):
        ham = tfim_hamiltonian(3)
        state = _random_state(np.random.default_rng(seed), 8)
        assert pure_state_energy_bound(ham, state)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), error=st.floats(0, 0.5, allow_nan=False))
    def test_property_two_for_random_mixed_states(self, seed, error):
        ham = tfim_hamiltonian(2)
        rho = DensityMatrix.from_statevector(_random_state(np.random.default_rng(seed), 4))
        rho.apply_kraus(depolarizing_kraus(error), (0,))
        rho.apply_kraus(depolarizing_kraus(error / 2), (1,))
        assert mixed_state_energy_bound(ham, rho)

    def test_maximally_mixed_state_respects_bound(self, tfim4):
        rho = np.eye(16) / 16.0
        assert mixed_state_energy_bound(tfim4, rho)

    def test_check_energy_soundness_passes_above_bound(self, tfim4):
        check_energy_soundness(tfim4.ground_energy() + 0.5, tfim4)

    def test_check_energy_soundness_raises_below_bound(self, tfim4):
        with pytest.raises(VAQEMError):
            check_energy_soundness(tfim4.ground_energy() - 1.0, tfim4, context="unit-test")

    def test_energy_gap(self, tfim4):
        assert energy_gap_to_optimal(tfim4.ground_energy() + 0.3, tfim4) == pytest.approx(0.3)


class TestHellinger:
    def test_identical_distributions(self):
        dist = {"00": 0.5, "11": 0.5}
        assert hellinger_distance(dist, dist) == pytest.approx(0.0)
        assert hellinger_fidelity(dist, dist) == pytest.approx(1.0)

    def test_disjoint_distributions(self):
        assert hellinger_fidelity({"00": 1.0}, {"11": 1.0}) == pytest.approx(0.0)
        assert hellinger_distance({"00": 1.0}, {"11": 1.0}) == pytest.approx(1.0)

    def test_counts_and_arrays_accepted(self):
        counts = {"0": 512, "1": 512}
        array = np.array([0.5, 0.5])
        assert hellinger_fidelity(counts, array) == pytest.approx(1.0)

    def test_known_value(self):
        # H^2 = 1 - (sqrt(0.5*1.0)) for p={0:0.5,1:0.5}, q={0:1}.
        fidelity = hellinger_fidelity({"0": 0.5, "1": 0.5}, {"0": 1.0})
        assert fidelity == pytest.approx((math.sqrt(0.5)) ** 2, abs=1e-12)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ReproError):
            hellinger_fidelity({}, {"0": 1.0})

    def test_non_power_of_two_array_rejected(self):
        with pytest.raises(ReproError):
            hellinger_fidelity(np.array([0.3, 0.3, 0.4]), np.array([1.0, 0.0]))

    @settings(max_examples=30, deadline=None)
    @given(p=st.lists(st.floats(0.01, 1.0), min_size=4, max_size=4),
           q=st.lists(st.floats(0.01, 1.0), min_size=4, max_size=4))
    def test_fidelity_bounds_and_symmetry(self, p, q):
        p = np.array(p) / sum(p)
        q = np.array(q) / sum(q)
        fidelity = hellinger_fidelity(p, q)
        assert 0.0 <= fidelity <= 1.0 + 1e-9
        assert fidelity == pytest.approx(hellinger_fidelity(q, p))


class TestOtherMetrics:
    def test_total_variation(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)
        assert total_variation_distance({"0": 0.5, "1": 0.5}, {"0": 0.5, "1": 0.5}) == pytest.approx(0.0)

    def test_state_fidelity_pure_reference(self):
        rho = np.diag([0.75, 0.25])
        assert state_fidelity(rho, np.array([1, 0])) == pytest.approx(0.75)

    def test_state_fidelity_two_density_matrices(self):
        rho = np.diag([1.0, 0.0])
        sigma = np.diag([0.5, 0.5])
        assert state_fidelity(rho, sigma) == pytest.approx(0.5, abs=1e-9)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.19, 2.19]) == pytest.approx(2.19)

    def test_geometric_mean_requires_positive_values(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ReproError):
            geometric_mean([])
