"""Seeded random circuit and schedule generation, shared by tests and benchmarks.

One generator feeds both the fuzz suites (``test_canonical.py``,
``test_randomized_differential.py``) and the randomized benchmark leg in
``benchmarks/run_all.py``, so benchmark inputs and fuzz cases come from the
same source and a failing case is always reproducible from its seed alone
(see ``docs/testing.md``).

Everything here is a pure function of its ``seed`` argument: the same seed
produces the same circuit, schedule, variant family or permutation on every
platform and in every process.  No pytest dependency — the module is plain
Python, imported by the test suite from the ``tests`` directory and by the
benchmark driver via an explicit ``sys.path`` entry.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import fake_casablanca
from repro.circuits import QuantumCircuit
from repro.engine.canonical import commutes, instruction_footprints
from repro.mitigation.dd import DDConfig, insert_dd_sequences, max_sequences_in_window
from repro.mitigation.gate_scheduling import GSConfig, movable_gate, reschedule_gate
from repro.transpiler import transpile
from repro.transpiler.pipeline import TranspileResult
from repro.transpiler.scheduling import ScheduledCircuit

#: Parameterized single-qubit gates the generator draws angles for.
_PARAMETRIC_1Q = ("rx", "ry", "rz")
#: Fixed single-qubit gates, including the diagonal ones (commuting
#: same-qubit adjacencies) and x/y (the DD-pulse shapes the canonical key
#: defers).
_FIXED_1Q = ("x", "y", "h", "s", "sx", "t", "z")


def fuzz_device(seed: int = 7001):
    """The deterministic 7-qubit device every fuzz case runs on.

    The Casablanca model carries the full noise surface the canonicalisation
    rules must respect — coupling map, nonzero ZZ crosstalk rates, per-qubit
    calibration — and a fixed construction seed keeps fingerprints stable
    across runs.
    """
    return fake_casablanca(seed=seed)


def random_circuit(
    seed: int,
    num_qubits: int = 4,
    depth: int = 12,
    p_two_qubit: float = 0.25,
    p_delay: float = 0.15,
    measure: bool = True,
) -> QuantumCircuit:
    """A seeded random logical circuit with idle windows.

    ``depth`` counts layers; each layer applies, per qubit, either a random
    single-qubit gate (parameterized or fixed), joins a two-qubit ``cx``
    (non-commuting adjacencies), or inserts an explicit ``delay`` (idle
    windows for the schedule-level fuzzing).  Consecutive same-qubit draws
    produce both commuting (diagonal-diagonal) and non-commuting adjacencies
    by construction.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"fuzz_{seed}")
    for _ in range(depth):
        order = list(rng.permutation(num_qubits))
        used: set = set()
        while order:
            qubit = order.pop(0)
            if qubit in used:
                continue
            used.add(qubit)
            draw = rng.random()
            if draw < p_two_qubit and order:
                partners = [q for q in order if q not in used]
                if partners:
                    partner = partners[int(rng.integers(len(partners)))]
                    used.add(partner)
                    if rng.random() < 0.5:
                        circuit.cx(qubit, partner)
                    else:
                        circuit.cx(partner, qubit)
                    continue
            if draw < p_two_qubit + p_delay:
                circuit.delay(float(rng.uniform(40.0, 400.0)), qubit)
            elif rng.random() < 0.5:
                name = _PARAMETRIC_1Q[int(rng.integers(len(_PARAMETRIC_1Q)))]
                getattr(circuit, name)(float(rng.uniform(-np.pi, np.pi)), qubit)
            else:
                name = _FIXED_1Q[int(rng.integers(len(_FIXED_1Q)))]
                getattr(circuit, name)(qubit)
    if measure:
        circuit.measure_all()
    return circuit


def random_compiled(
    seed: int,
    num_qubits: int = 4,
    depth: int = 12,
    device=None,
    **kwargs,
) -> TranspileResult:
    """Transpile a :func:`random_circuit` for the fuzz device.

    Returns the full :class:`TranspileResult` (schedule plus idle windows),
    so callers can build DD/GS variant families from the same compilation.
    """
    device = device if device is not None else fuzz_device()
    circuit = random_circuit(seed, num_qubits=num_qubits, depth=depth, **kwargs)
    return transpile(circuit, device)


def random_schedule(seed: int, num_qubits: int = 4, depth: int = 12, device=None) -> ScheduledCircuit:
    """The scheduled circuit of :func:`random_compiled` (convenience)."""
    return random_compiled(seed, num_qubits=num_qubits, depth=depth, device=device).scheduled


def schedule_family(
    compiled: TranspileResult,
    seed: int,
    max_variants: int = 6,
) -> List[ScheduledCircuit]:
    """Sweep-style variants of one compiled schedule (base always first).

    Mirrors what the window tuner evaluates: DD pulses inserted into idle
    windows and single-qubit gates moved within them.  These are the
    families whose canonical prefixes the engine's reuse fast path shares.
    """
    rng = np.random.default_rng(seed)
    variants: List[ScheduledCircuit] = [compiled.scheduled]
    windows = list(compiled.idle_windows)
    rng.shuffle(windows)
    for window in windows:
        if len(variants) > max_variants:
            break
        capacity = max_sequences_in_window(window, compiled.scheduled, "xy4")
        if capacity > 0:
            count = int(rng.integers(1, capacity + 1))
            variants.append(
                insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", count))
            )
        if movable_gate(compiled.scheduled, window) is not None:
            position = float(rng.uniform(0.0, 1.0))
            variants.append(reschedule_gate(compiled.scheduled, window, GSConfig(position)))
    return variants[: max_variants + 1]


# ----------------------------------------------------------------------------
# Benign permutations (the canonicalisation oracle's "allowed" reorderings)
# ----------------------------------------------------------------------------

def _tie_key(timed) -> Tuple[float, bool]:
    """The stable-sort tie group of ``sorted_instructions``."""
    return (timed.start_ns, timed.name == "measure")


def benign_permutation(scheduled: ScheduledCircuit, seed: int) -> ScheduledCircuit:
    """A copy whose instruction list is reordered only in ways that preserve
    schedule semantics.

    Two reorderings are benign: any permutation of the *list* that
    ``sorted_instructions`` undoes (instructions at different start times),
    and swaps of same-start instructions that provably commute
    (:func:`repro.engine.canonical.commutes`).  Same-start instructions that
    do **not** commute — e.g. a zero-duration ``rz`` and the ``sx`` starting
    at the same instant on the same qubit — keep their relative order: that
    order is part of the schedule's content.  Canonicalisation must map every
    output of this function to the identical canonical order.
    """
    rng = random.Random(seed)
    out = scheduled.copy()
    base = out.sorted_instructions()
    footprints = instruction_footprints(out, base)

    # Group the time-sorted instructions by stable-sort tie key.
    groups: List[List[Tuple[object, object]]] = []
    previous = None
    for timed, footprint in zip(base, footprints):
        key = _tie_key(timed)
        if key != previous:
            groups.append([])
            previous = key
        groups[-1].append((timed, footprint))

    # Random linear extension of each tie group that keeps every
    # non-commuting pair in its original relative order.
    shuffled_groups: List[List[object]] = []
    for members in groups:
        count = len(members)
        blockers: List[set] = [set() for _ in range(count)]
        for i in range(count):
            for j in range(i + 1, count):
                if not commutes(
                    members[i][0], members[j][0], members[i][1], members[j][1]
                ):
                    blockers[j].add(i)
        placed: set = set()
        emitted: List[object] = []
        while len(emitted) < count:
            ready = [
                k for k in range(count) if k not in placed and blockers[k] <= placed
            ]
            pick = rng.choice(ready)
            placed.add(pick)
            emitted.append(members[pick][0])
        shuffled_groups.append(emitted)

    # Random interleave across groups, preserving each group's new internal
    # order (the stable sort reassembles the groups; only intra-group order
    # survives into ``sorted_instructions``).
    interleaved: List[object] = []
    fronts = [list(group) for group in shuffled_groups if group]
    while fronts:
        group = rng.choice(fronts)
        interleaved.append(group.pop(0))
        if not group:
            fronts.remove(group)
    out.timed_instructions = interleaved
    return out


def segment_family(
    compiled: TranspileResult,
    seed: int,
    max_variants: int = 6,
) -> List[Tuple[str, object, ScheduledCircuit]]:
    """Segment-sharing candidates of one compiled schedule, labelled.

    The segment-reuse differential harness (``tests/test_segments.py``,
    the ``segment_reuse`` leg of ``benchmarks/run_all.py``) needs families
    whose members share *checkpoint-aligned segments* rather than just
    prefixes: window-tuner candidates that diverge inside exactly one idle
    window and are untouched everywhere else, so every canonical segment not
    overlapping that window carries identical content before and after the
    edit.  Returns ``(label, window, scheduled)`` triples, base first:

    - ``("base", None, ...)`` — the compiled schedule itself;
    - ``("dd", window, ...)`` / ``("gs", window, ...)`` — one DD insertion
      or gate move inside ``window``, the single point of divergence;
    - ``("perm_base", None, ...)`` / ``("perm_dd"|"perm_gs", window, ...)``
      — benign permutations (:func:`benign_permutation`) of the base and the
      first variant: same content, reassembled instruction list, so
      canonicalisation maps them to the identical canonical order and their
      segment keys must match their source's bit for bit.

    Deterministic per ``(compiled, seed)`` like everything in this module.
    """
    rng = np.random.default_rng(seed)
    members: List[Tuple[str, object, ScheduledCircuit]] = [
        ("base", None, compiled.scheduled)
    ]
    windows = list(compiled.idle_windows)
    rng.shuffle(windows)
    for window in windows:
        if len(members) > max_variants:
            break
        capacity = max_sequences_in_window(window, compiled.scheduled, "xy4")
        if capacity > 0:
            count = int(rng.integers(1, capacity + 1))
            members.append(
                (
                    "dd",
                    window,
                    insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", count)),
                )
            )
        if movable_gate(compiled.scheduled, window) is not None:
            position = float(rng.uniform(0.0, 1.0))
            members.append(
                ("gs", window, reschedule_gate(compiled.scheduled, window, GSConfig(position)))
            )
    members = members[: max_variants + 1]
    for index, (label, window, scheduled) in enumerate(members[:2]):
        members.append(
            (f"perm_{label}", window, benign_permutation(scheduled, seed + index))
        )
    return members


def fuzz_seeds(count: int, offset: int = 0) -> List[int]:
    """The canonical fuzz seed list (documented in ``docs/testing.md``)."""
    return [1000 + offset + index for index in range(count)]


# ----------------------------------------------------------------------------
# Frontend fuzzing: seeded QASM/JSON program generation and corruption
# ----------------------------------------------------------------------------
#
# ``random_qasm_case`` emits a pair (QASM text, reference circuit) where the
# reference is built through the native circuit API applying *exactly* the
# instructions the frontend pipeline should produce — including the
# decomposer's expansions for non-native gates and the parser's macro
# expansions.  The round-trip property is then content-exact: same
# fingerprint, bit-identical engine results.  Expression arguments come from
# a fixed table whose Python mirrors replay the parser's evaluation order
# operation for operation, so the float values agree to the last bit.

import math

from repro.circuits.gates import Barrier, Delay, Measure, standard_gate
from repro.frontend import Decomposer

#: (expression text, bit-exact Python value) pairs — the mirror must apply
#: the same float operations in the same order as the QASM expression
#: evaluator.
_EXPRESSIONS: Tuple[Tuple[str, float], ...] = (
    ("pi/2", math.pi / 2),
    ("-pi/4", -(math.pi / 4)),
    ("3*pi/4", (3.0 * math.pi) / 4),
    ("2*pi/3", (2.0 * math.pi) / 3),
    ("0.5", 0.5),
    ("1.25", 1.25),
    ("-0.75", -0.75),
    ("1e-3", float("1e-3")),
    ("sin(0.5)", math.sin(0.5)),
    ("cos(0.25)", math.cos(0.25)),
    ("sqrt(2)/2", math.sqrt(2.0) / 2),
    ("(pi+1)/4", (math.pi + 1.0) / 4),
    ("2^-2", math.pow(2.0, -2.0)),
    ("0.7 - 0.2", 0.7 - 0.2),
)

_QASM_FIXED_1Q = ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "id")
_QASM_PARAM_1Q = ("rx", "ry", "rz", "p")
_QASM_FIXED_2Q = ("cx", "cz", "swap")
_QASM_PARAM_2Q = ("rzz", "rxx", "cry")
#: Non-native gates the decomposer must expand: (name, num params, arity).
_QASM_DECOMPOSED = (
    ("u1", 1, 1), ("u2", 2, 1), ("u", 3, 1),
    ("cp", 1, 2), ("crz", 1, 2), ("cu1", 1, 2), ("cy", 0, 2), ("ch", 0, 2),
    ("ccx", 0, 3), ("cswap", 0, 3),
)


def random_qasm_case(seed: int, num_qubits: Optional[int] = None) -> Tuple[str, QuantumCircuit]:
    """A seeded valid OpenQASM 2.0 program plus its reference circuit.

    The program exercises the full supported grammar — fixed/parametric
    native gates, expression arguments, decomposable qelib1 gates, gate
    macros (plain and parameterized), register broadcast, barriers, the
    ``delay`` extension and a final register-wide measure — and the
    reference circuit applies exactly the instruction stream the frontend
    pipeline (parse, macro-expand, decompose) should emit.
    """
    rng = random.Random(seed)
    n = num_qubits if num_qubits is not None else rng.randint(2, 5)
    decomposer = Decomposer.default()
    circuit = QuantumCircuit(n, n, name=f"qasm_fuzz_{seed}")
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";', f"qreg q[{n}];", f"creg c[{n}];"]

    def qubits_sample(k: int) -> List[int]:
        return rng.sample(range(n), k)

    def apply(name: str, params: Sequence[float], qubits: Sequence[int]) -> None:
        for gate_name, gate_params, gate_qubits in decomposer.expand(name, params, qubits):
            circuit.append(standard_gate(gate_name, *gate_params), gate_qubits)

    # Optional macros, defined up front (QASM requires definition before use).
    macros = []
    if rng.random() < 0.5:
        body_gates = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.5:
                body_gates.append((rng.choice(_QASM_FIXED_1Q), "a"))
            else:
                body_gates.append(("cx", "a, b"))
        body = " ".join(f"{g} {args};" for g, args in body_gates)
        lines.append(f"gate m{seed % 97}_f a, b {{ {body} }}")
        macros.append(("fixed", f"m{seed % 97}_f", body_gates))
    if rng.random() < 0.5:
        lines.append(f"gate m{seed % 97}_p(t) a {{ rz(t) a; rx(-t) a; }}")
        macros.append(("param", f"m{seed % 97}_p", None))

    statements = rng.randint(4, 12)
    for _ in range(statements):
        kind = rng.random()
        if kind < 0.25:
            name = rng.choice(_QASM_FIXED_1Q)
            (q,) = qubits_sample(1)
            lines.append(f"{name} q[{q}];")
            apply(name, (), (q,))
        elif kind < 0.45:
            name = rng.choice(_QASM_PARAM_1Q)
            expr, value = rng.choice(_EXPRESSIONS)
            (q,) = qubits_sample(1)
            lines.append(f"{name}({expr}) q[{q}];")
            apply(name, (value,), (q,))
        elif kind < 0.60 and n >= 2:
            if rng.random() < 0.5:
                name = rng.choice(_QASM_FIXED_2Q)
                params: Tuple[float, ...] = ()
                args = ""
            else:
                name = rng.choice(_QASM_PARAM_2Q)
                expr, value = rng.choice(_EXPRESSIONS)
                params = (value,)
                args = f"({expr})"
            qa, qb = qubits_sample(2)
            lines.append(f"{name}{args} q[{qa}], q[{qb}];")
            apply(name, params, (qa, qb))
        elif kind < 0.75:
            candidates = [g for g in _QASM_DECOMPOSED if g[2] <= n]
            name, num_params, arity = rng.choice(candidates)
            exprs, values = [], []
            for _ in range(num_params):
                expr, value = rng.choice(_EXPRESSIONS)
                exprs.append(expr)
                values.append(value)
            qubits = qubits_sample(arity)
            args = f"({', '.join(exprs)})" if exprs else ""
            targets = ", ".join(f"q[{q}]" for q in qubits)
            lines.append(f"{name}{args} {targets};")
            apply(name, tuple(values), tuple(qubits))
        elif kind < 0.82:
            # Register broadcast of a fixed single-qubit gate.
            name = rng.choice(_QASM_FIXED_1Q)
            lines.append(f"{name} q;")
            for q in range(n):
                apply(name, (), (q,))
        elif kind < 0.88:
            lines.append("barrier q;")
            circuit.append(Barrier(n), tuple(range(n)))
        elif kind < 0.94:
            (q,) = qubits_sample(1)
            duration = float(rng.randint(1, 8) * 40)
            lines.append(f"delay({duration!r}) q[{q}];")
            circuit.append(Delay(duration), (q,))
        elif macros:
            style, name, body_gates = rng.choice(macros)
            if style == "fixed":
                if n < 2:
                    continue
                qa, qb = qubits_sample(2)
                lines.append(f"{name} q[{qa}], q[{qb}];")
                binding = {"a": qa, "b": qb}
                for gate, args in body_gates:
                    targets = tuple(binding[x.strip()] for x in args.split(","))
                    apply(gate, (), targets)
            else:
                expr, value = rng.choice(_EXPRESSIONS)
                (q,) = qubits_sample(1)
                lines.append(f"{name}({expr}) q[{q}];")
                apply("rz", (value,), (q,))
                apply("rx", (-value,), (q,))
    lines.append("measure q -> c;")
    for q in range(n):
        circuit.append(Measure(), (q,), (q,))
    return "\n".join(lines) + "\n", circuit


def random_json_case(seed: int, num_qubits: Optional[int] = None) -> Tuple[str, QuantumCircuit]:
    """A seeded valid ``repro-circuit`` JSON document plus its reference."""
    from repro.frontend import circuit_to_json

    _, circuit = random_qasm_case(seed, num_qubits=num_qubits)
    return circuit_to_json(circuit), circuit


#: Mutation classes for adversarial inputs.  ``junk_bytes`` is *guaranteed*
#: corrupting for generated programs (the generator emits no comments, and
#: the junk alphabet is outside the QASM grammar's); the other classes may by
#: chance produce a still-valid program, so the fuzz property for them is
#: "typed IngestError or clean success", never a crash.
CORRUPTION_KINDS = (
    "junk_bytes", "delete_span", "swap_tokens", "duplicate_token",
    "truncate", "flip_char",
)

_JUNK = "@#$%&!?~`\\|"


def corrupt_program(text: str, seed: int, kind: Optional[str] = None) -> Tuple[str, str]:
    """Mutate program text; returns ``(kind, corrupted_text)``.

    Deterministic per ``(text, seed)``; ``kind`` forces one mutation class.
    """
    rng = random.Random(seed)
    kind = kind or rng.choice(CORRUPTION_KINDS)
    if not text:
        return kind, rng.choice(_JUNK)
    if kind == "junk_bytes":
        position = rng.randint(0, len(text))
        junk = "".join(rng.choice(_JUNK) for _ in range(rng.randint(1, 4)))
        return kind, text[:position] + junk + text[position:]
    if kind == "delete_span":
        start = rng.randint(0, max(0, len(text) - 2))
        end = min(len(text), start + rng.randint(1, 12))
        return kind, text[:start] + text[end:]
    if kind == "swap_tokens":
        tokens = text.split()
        if len(tokens) >= 2:
            i, j = rng.sample(range(len(tokens)), 2)
            tokens[i], tokens[j] = tokens[j], tokens[i]
        return kind, " ".join(tokens)
    if kind == "duplicate_token":
        tokens = text.split()
        if tokens:
            i = rng.randrange(len(tokens))
            tokens.insert(i, tokens[i])
        return kind, " ".join(tokens)
    if kind == "truncate":
        return kind, text[: rng.randint(0, max(0, len(text) - 1))]
    # flip_char: overwrite one character with another printable one.
    position = rng.randrange(len(text))
    replacement = rng.choice("abcxyz0189;,[](){}")
    return kind, text[:position] + replacement + text[position + 1 :]
