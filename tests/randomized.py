"""Seeded random circuit and schedule generation, shared by tests and benchmarks.

One generator feeds both the fuzz suites (``test_canonical.py``,
``test_randomized_differential.py``) and the randomized benchmark leg in
``benchmarks/run_all.py``, so benchmark inputs and fuzz cases come from the
same source and a failing case is always reproducible from its seed alone
(see ``docs/testing.md``).

Everything here is a pure function of its ``seed`` argument: the same seed
produces the same circuit, schedule, variant family or permutation on every
platform and in every process.  No pytest dependency — the module is plain
Python, imported by the test suite from the ``tests`` directory and by the
benchmark driver via an explicit ``sys.path`` entry.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import fake_casablanca
from repro.circuits import QuantumCircuit
from repro.engine.canonical import commutes, instruction_footprints
from repro.mitigation.dd import DDConfig, insert_dd_sequences, max_sequences_in_window
from repro.mitigation.gate_scheduling import GSConfig, movable_gate, reschedule_gate
from repro.transpiler import transpile
from repro.transpiler.pipeline import TranspileResult
from repro.transpiler.scheduling import ScheduledCircuit

#: Parameterized single-qubit gates the generator draws angles for.
_PARAMETRIC_1Q = ("rx", "ry", "rz")
#: Fixed single-qubit gates, including the diagonal ones (commuting
#: same-qubit adjacencies) and x/y (the DD-pulse shapes the canonical key
#: defers).
_FIXED_1Q = ("x", "y", "h", "s", "sx", "t", "z")


def fuzz_device(seed: int = 7001):
    """The deterministic 7-qubit device every fuzz case runs on.

    The Casablanca model carries the full noise surface the canonicalisation
    rules must respect — coupling map, nonzero ZZ crosstalk rates, per-qubit
    calibration — and a fixed construction seed keeps fingerprints stable
    across runs.
    """
    return fake_casablanca(seed=seed)


def random_circuit(
    seed: int,
    num_qubits: int = 4,
    depth: int = 12,
    p_two_qubit: float = 0.25,
    p_delay: float = 0.15,
    measure: bool = True,
) -> QuantumCircuit:
    """A seeded random logical circuit with idle windows.

    ``depth`` counts layers; each layer applies, per qubit, either a random
    single-qubit gate (parameterized or fixed), joins a two-qubit ``cx``
    (non-commuting adjacencies), or inserts an explicit ``delay`` (idle
    windows for the schedule-level fuzzing).  Consecutive same-qubit draws
    produce both commuting (diagonal-diagonal) and non-commuting adjacencies
    by construction.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"fuzz_{seed}")
    for _ in range(depth):
        order = list(rng.permutation(num_qubits))
        used: set = set()
        while order:
            qubit = order.pop(0)
            if qubit in used:
                continue
            used.add(qubit)
            draw = rng.random()
            if draw < p_two_qubit and order:
                partners = [q for q in order if q not in used]
                if partners:
                    partner = partners[int(rng.integers(len(partners)))]
                    used.add(partner)
                    if rng.random() < 0.5:
                        circuit.cx(qubit, partner)
                    else:
                        circuit.cx(partner, qubit)
                    continue
            if draw < p_two_qubit + p_delay:
                circuit.delay(float(rng.uniform(40.0, 400.0)), qubit)
            elif rng.random() < 0.5:
                name = _PARAMETRIC_1Q[int(rng.integers(len(_PARAMETRIC_1Q)))]
                getattr(circuit, name)(float(rng.uniform(-np.pi, np.pi)), qubit)
            else:
                name = _FIXED_1Q[int(rng.integers(len(_FIXED_1Q)))]
                getattr(circuit, name)(qubit)
    if measure:
        circuit.measure_all()
    return circuit


def random_compiled(
    seed: int,
    num_qubits: int = 4,
    depth: int = 12,
    device=None,
    **kwargs,
) -> TranspileResult:
    """Transpile a :func:`random_circuit` for the fuzz device.

    Returns the full :class:`TranspileResult` (schedule plus idle windows),
    so callers can build DD/GS variant families from the same compilation.
    """
    device = device if device is not None else fuzz_device()
    circuit = random_circuit(seed, num_qubits=num_qubits, depth=depth, **kwargs)
    return transpile(circuit, device)


def random_schedule(seed: int, num_qubits: int = 4, depth: int = 12, device=None) -> ScheduledCircuit:
    """The scheduled circuit of :func:`random_compiled` (convenience)."""
    return random_compiled(seed, num_qubits=num_qubits, depth=depth, device=device).scheduled


def schedule_family(
    compiled: TranspileResult,
    seed: int,
    max_variants: int = 6,
) -> List[ScheduledCircuit]:
    """Sweep-style variants of one compiled schedule (base always first).

    Mirrors what the window tuner evaluates: DD pulses inserted into idle
    windows and single-qubit gates moved within them.  These are the
    families whose canonical prefixes the engine's reuse fast path shares.
    """
    rng = np.random.default_rng(seed)
    variants: List[ScheduledCircuit] = [compiled.scheduled]
    windows = list(compiled.idle_windows)
    rng.shuffle(windows)
    for window in windows:
        if len(variants) > max_variants:
            break
        capacity = max_sequences_in_window(window, compiled.scheduled, "xy4")
        if capacity > 0:
            count = int(rng.integers(1, capacity + 1))
            variants.append(
                insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", count))
            )
        if movable_gate(compiled.scheduled, window) is not None:
            position = float(rng.uniform(0.0, 1.0))
            variants.append(reschedule_gate(compiled.scheduled, window, GSConfig(position)))
    return variants[: max_variants + 1]


# ----------------------------------------------------------------------------
# Benign permutations (the canonicalisation oracle's "allowed" reorderings)
# ----------------------------------------------------------------------------

def _tie_key(timed) -> Tuple[float, bool]:
    """The stable-sort tie group of ``sorted_instructions``."""
    return (timed.start_ns, timed.name == "measure")


def benign_permutation(scheduled: ScheduledCircuit, seed: int) -> ScheduledCircuit:
    """A copy whose instruction list is reordered only in ways that preserve
    schedule semantics.

    Two reorderings are benign: any permutation of the *list* that
    ``sorted_instructions`` undoes (instructions at different start times),
    and swaps of same-start instructions that provably commute
    (:func:`repro.engine.canonical.commutes`).  Same-start instructions that
    do **not** commute — e.g. a zero-duration ``rz`` and the ``sx`` starting
    at the same instant on the same qubit — keep their relative order: that
    order is part of the schedule's content.  Canonicalisation must map every
    output of this function to the identical canonical order.
    """
    rng = random.Random(seed)
    out = scheduled.copy()
    base = out.sorted_instructions()
    footprints = instruction_footprints(out, base)

    # Group the time-sorted instructions by stable-sort tie key.
    groups: List[List[Tuple[object, object]]] = []
    previous = None
    for timed, footprint in zip(base, footprints):
        key = _tie_key(timed)
        if key != previous:
            groups.append([])
            previous = key
        groups[-1].append((timed, footprint))

    # Random linear extension of each tie group that keeps every
    # non-commuting pair in its original relative order.
    shuffled_groups: List[List[object]] = []
    for members in groups:
        count = len(members)
        blockers: List[set] = [set() for _ in range(count)]
        for i in range(count):
            for j in range(i + 1, count):
                if not commutes(
                    members[i][0], members[j][0], members[i][1], members[j][1]
                ):
                    blockers[j].add(i)
        placed: set = set()
        emitted: List[object] = []
        while len(emitted) < count:
            ready = [
                k for k in range(count) if k not in placed and blockers[k] <= placed
            ]
            pick = rng.choice(ready)
            placed.add(pick)
            emitted.append(members[pick][0])
        shuffled_groups.append(emitted)

    # Random interleave across groups, preserving each group's new internal
    # order (the stable sort reassembles the groups; only intra-group order
    # survives into ``sorted_instructions``).
    interleaved: List[object] = []
    fronts = [list(group) for group in shuffled_groups if group]
    while fronts:
        group = rng.choice(fronts)
        interleaved.append(group.pop(0))
        if not group:
            fronts.remove(group)
    out.timed_instructions = interleaved
    return out


def fuzz_seeds(count: int, offset: int = 0) -> List[int]:
    """The canonical fuzz seed list (documented in ``docs/testing.md``)."""
    return [1000 + offset + index for index in range(count)]
