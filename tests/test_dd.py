"""Tests for dynamical-decoupling insertion."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import MitigationError
from repro.mitigation import (
    DD_SEQUENCES,
    DDConfig,
    apply_dd_configuration,
    insert_dd_sequences,
    max_sequences_in_window,
    uniform_dd,
)
from repro.simulators import NoiseModel, NoisySimulator
from repro.transpiler import find_idle_windows, schedule_circuit


@pytest.fixture
def windowed_schedule(device):
    """A 1-qubit schedule with one 2000 ns idle window."""
    circuit = QuantumCircuit(1)
    circuit.sx(0)
    circuit.delay(2000.0, 0)
    circuit.sx(0)
    circuit.measure(0, 0)
    scheduled = schedule_circuit(circuit, device)
    windows = find_idle_windows(scheduled)
    assert len(windows) == 1
    return scheduled, windows[0]


class TestDDConfig:
    def test_invalid_sequence(self):
        with pytest.raises(MitigationError):
            DDConfig("zz", 1)

    def test_negative_count(self):
        with pytest.raises(MitigationError):
            DDConfig("xx", -1)

    def test_pulse_count(self):
        assert DDConfig("xy4", 3).num_pulses == 12
        assert DDConfig("xx", 2).num_pulses == 4

    def test_known_sequences_are_identity(self):
        from repro.circuits.gates import standard_gate

        for name, pulses in DD_SEQUENCES.items():
            product = np.eye(2, dtype=complex)
            for pulse in pulses:
                product = standard_gate(pulse).matrix() @ product
            assert np.allclose(np.abs(product), np.eye(2), atol=1e-12), name


class TestCapacity:
    def test_max_sequences(self, windowed_schedule):
        scheduled, window = windowed_schedule
        # 2000 ns window, 35.56 ns pulses: 14 XY4 sequences (4 pulses each) fit.
        assert max_sequences_in_window(window, scheduled, "xy4") == 14
        assert max_sequences_in_window(window, scheduled, "xx") == 28

    def test_unknown_sequence(self, windowed_schedule):
        scheduled, window = windowed_schedule
        with pytest.raises(MitigationError):
            max_sequences_in_window(window, scheduled, "abc")


class TestInsertion:
    def test_zero_sequences_is_a_copy(self, windowed_schedule):
        scheduled, window = windowed_schedule
        out = insert_dd_sequences(scheduled, window, DDConfig("xy4", 0))
        assert len(out.timed_instructions) == len(scheduled.timed_instructions)
        assert out is not scheduled

    def test_pulse_count_and_names(self, windowed_schedule):
        scheduled, window = windowed_schedule
        out = insert_dd_sequences(scheduled, window, DDConfig("xy4", 2))
        added = [t for t in out.timed_instructions if t.name in ("x", "y")]
        assert len(added) == 8
        assert [t.name for t in sorted(added, key=lambda t: t.start_ns)] == ["x", "y"] * 4

    def test_pulses_stay_inside_window(self, windowed_schedule):
        scheduled, window = windowed_schedule
        out = insert_dd_sequences(scheduled, window, DDConfig("xx", 5))
        added = [t for t in out.timed_instructions if t.name == "x"]
        assert all(t.start_ns >= window.start_ns - 1e-9 for t in added)
        assert all(t.end_ns <= window.end_ns + 1e-9 for t in added)
        assert out.validate_no_overlap()

    def test_periodic_spacing_is_uniform(self, windowed_schedule):
        scheduled, window = windowed_schedule
        out = insert_dd_sequences(scheduled, window, DDConfig("xx", 1))
        added = sorted([t for t in out.timed_instructions if t.name == "x"], key=lambda t: t.start_ns)
        first_gap = added[0].start_ns - window.start_ns
        middle_gap = added[1].start_ns - added[0].end_ns
        last_gap = window.end_ns - added[1].end_ns
        assert first_gap == pytest.approx(middle_gap)
        assert middle_gap == pytest.approx(last_gap)

    def test_overfull_window_rejected(self, windowed_schedule):
        scheduled, window = windowed_schedule
        with pytest.raises(MitigationError):
            insert_dd_sequences(scheduled, window, DDConfig("xy4", 100))

    def test_original_schedule_untouched(self, windowed_schedule):
        scheduled, window = windowed_schedule
        count = len(scheduled.timed_instructions)
        insert_dd_sequences(scheduled, window, DDConfig("xy4", 3))
        assert len(scheduled.timed_instructions) == count

    def test_metadata_records_configuration(self, windowed_schedule):
        scheduled, window = windowed_schedule
        out = insert_dd_sequences(scheduled, window, DDConfig("xy4", 2))
        assert out.metadata["dd_windows"][window.index] == ("xy4", 2)


class TestBulkApplication:
    def test_apply_configuration_respects_indices(self, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        windows = scheduled_su2_4q.idle_windows
        target = max(windows, key=lambda w: w.duration_ns)
        configs = {target.index: DDConfig("xx", 1)}
        out = apply_dd_configuration(scheduled, windows, configs)
        added = len(out.timed_instructions) - len(scheduled.timed_instructions)
        assert added == 2

    def test_uniform_dd_adds_to_every_feasible_window(self, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        windows = scheduled_su2_4q.idle_windows
        out = uniform_dd(scheduled, windows, sequence="xx", num_sequences=1)
        feasible = [w for w in windows if max_sequences_in_window(w, scheduled, "xx") >= 1]
        added = len(out.timed_instructions) - len(scheduled.timed_instructions)
        assert added == 2 * len(feasible)
        assert out.validate_no_overlap()

    def test_dd_refocuses_detuning_in_simulation(self, device, windowed_schedule):
        """A full XY4 round recovers fidelity lost to coherent idle dephasing."""
        scheduled, window = windowed_schedule
        noise = NoiseModel(
            device,
            include_coherent_errors=True,
            include_crosstalk=False,
            include_readout_error=False,
            include_gate_error=False,
            include_relaxation=False,
        )
        sim = NoisySimulator(noise)
        baseline, _ = sim.measured_probabilities(scheduled)
        mitigated, _ = sim.measured_probabilities(
            insert_dd_sequences(scheduled, window, DDConfig("xy4", 8))
        )
        # Ideal outcome of sx-idle-sx is |1>; DD must move probability toward it.
        assert mitigated[1] > baseline[1]
