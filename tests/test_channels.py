"""Tests for Kraus channels (validity, limiting cases, composition)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NoiseModelError
from repro.simulators import (
    amplitude_damping_kraus,
    bit_flip_kraus,
    coherent_z_kraus,
    coherent_zz_kraus,
    compose_channels,
    depolarizing_kraus,
    identity_kraus,
    is_valid_channel,
    phase_damping_kraus,
    thermal_relaxation_kraus,
)
from repro.simulators.channels import channel_fidelity_on_state

_prob = st.floats(0.0, 1.0, allow_nan=False)


class TestChannelValidity:
    @given(gamma=_prob)
    def test_amplitude_damping_trace_preserving(self, gamma):
        assert is_valid_channel(amplitude_damping_kraus(gamma))

    @given(lam=_prob)
    def test_phase_damping_trace_preserving(self, lam):
        assert is_valid_channel(phase_damping_kraus(lam))

    @given(p=st.floats(0.0, 0.99, allow_nan=False))
    def test_depolarizing_trace_preserving(self, p):
        assert is_valid_channel(depolarizing_kraus(p))
        assert is_valid_channel(depolarizing_kraus(p, num_qubits=2))

    @given(angle=st.floats(-10, 10, allow_nan=False))
    def test_coherent_channels_unitary(self, angle):
        assert is_valid_channel(coherent_z_kraus(angle))
        assert is_valid_channel(coherent_zz_kraus(angle))

    @given(duration=st.floats(0.0, 1e5, allow_nan=False))
    def test_thermal_relaxation_trace_preserving(self, duration):
        assert is_valid_channel(thermal_relaxation_kraus(duration, t1_ns=8e4, t2_ns=6e4))

    def test_identity(self):
        assert is_valid_channel(identity_kraus())
        assert is_valid_channel(identity_kraus(2))

    def test_invalid_parameters(self):
        with pytest.raises(NoiseModelError):
            amplitude_damping_kraus(1.5)
        with pytest.raises(NoiseModelError):
            phase_damping_kraus(-0.1)
        with pytest.raises(NoiseModelError):
            depolarizing_kraus(1.0)
        with pytest.raises(NoiseModelError):
            depolarizing_kraus(0.1, num_qubits=3)
        with pytest.raises(NoiseModelError):
            thermal_relaxation_kraus(-1.0, 1e5, 1e5)
        with pytest.raises(NoiseModelError):
            bit_flip_kraus(2.0)

    def test_is_valid_channel_rejects_nontp(self):
        assert not is_valid_channel([np.eye(2) * 0.5])
        assert not is_valid_channel([])


class TestChannelBehaviour:
    def test_amplitude_damping_decays_one(self):
        kraus = amplitude_damping_kraus(0.3)
        rho_one = np.diag([0.0, 1.0]).astype(complex)
        out = sum(k @ rho_one @ k.conj().T for k in kraus)
        assert out[0, 0].real == pytest.approx(0.3)
        assert out[1, 1].real == pytest.approx(0.7)

    def test_amplitude_damping_preserves_zero(self):
        kraus = amplitude_damping_kraus(0.8)
        rho_zero = np.diag([1.0, 0.0]).astype(complex)
        out = sum(k @ rho_zero @ k.conj().T for k in kraus)
        assert np.allclose(out, rho_zero)

    def test_phase_damping_kills_coherence_not_population(self):
        kraus = phase_damping_kraus(1.0)
        plus = 0.5 * np.ones((2, 2), dtype=complex)
        out = sum(k @ plus @ k.conj().T for k in kraus)
        assert out[0, 1] == pytest.approx(0.0)
        assert out[0, 0].real == pytest.approx(0.5)

    def test_depolarizing_average_fidelity(self):
        error = 0.01
        kraus = depolarizing_kraus(error)
        # Average over the six cardinal states approximates 1 - error.
        states = [
            np.array([1, 0]), np.array([0, 1]),
            np.array([1, 1]) / math.sqrt(2), np.array([1, -1]) / math.sqrt(2),
            np.array([1, 1j]) / math.sqrt(2), np.array([1, -1j]) / math.sqrt(2),
        ]
        fidelities = [channel_fidelity_on_state(kraus, s) for s in states]
        assert np.mean(fidelities) == pytest.approx(1 - error, abs=2e-3)

    def test_thermal_relaxation_zero_duration_is_identity(self):
        kraus = thermal_relaxation_kraus(0.0, 1e5, 1e5)
        assert len(kraus) == 1
        assert np.allclose(kraus[0], np.eye(2))

    def test_thermal_relaxation_long_duration_decays(self):
        kraus = thermal_relaxation_kraus(1e6, t1_ns=1e4, t2_ns=1e4)
        rho_one = np.diag([0.0, 1.0]).astype(complex)
        out = sum(k @ rho_one @ k.conj().T for k in kraus)
        assert out[0, 0].real > 0.99

    def test_coherent_z_phase(self):
        kraus = coherent_z_kraus(math.pi)
        plus = np.array([1, 1]) / math.sqrt(2)
        rotated = kraus[0] @ plus
        minus = np.array([1, -1]) / math.sqrt(2)
        assert abs(np.vdot(minus, rotated)) == pytest.approx(1.0)

    def test_coherent_zz_is_diagonal(self):
        kraus = coherent_zz_kraus(0.5)
        assert np.allclose(kraus[0], np.diag(np.diag(kraus[0])))

    def test_compose_channels_order(self):
        # Full damping then bit flip leaves the qubit in |1>.
        composed = compose_channels(amplitude_damping_kraus(1.0), bit_flip_kraus(1.0))
        rho_one = np.diag([0.0, 1.0]).astype(complex)
        out = sum(k @ rho_one @ k.conj().T for k in composed)
        assert out[1, 1].real == pytest.approx(1.0)
        assert is_valid_channel(composed)

    @settings(max_examples=20, deadline=None)
    @given(gamma=_prob, lam=_prob)
    def test_composition_remains_trace_preserving(self, gamma, lam):
        composed = compose_channels(amplitude_damping_kraus(gamma), phase_damping_kraus(lam))
        assert is_valid_channel(composed)

    def test_echo_refocuses_coherent_z(self):
        """An X between two equal coherent-Z segments cancels the net phase."""
        x_gate = np.array([[0, 1], [1, 0]], dtype=complex)
        phase = coherent_z_kraus(0.8)[0]
        net = x_gate @ phase @ x_gate @ phase
        plus = np.array([1, 1]) / math.sqrt(2)
        assert abs(np.vdot(plus, net @ plus)) == pytest.approx(1.0)
