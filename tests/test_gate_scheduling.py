"""Tests for the single-qubit gate-scheduling mitigation pass."""

import pytest

from repro.circuits import QuantumCircuit, hahn_echo_microbenchmark
from repro.exceptions import MitigationError
from repro.mitigation import (
    GSConfig,
    apply_gs_configuration,
    movable_gate,
    position_sweep_values,
    reschedule_gate,
    tunable_windows,
)
from repro.simulators import NoiseModel, NoisySimulator
from repro.transpiler import find_idle_windows, schedule_circuit, transpile


@pytest.fixture
def echo_schedule(device):
    """sx - [window] - sx - measure, with the second sx ALAP at the window end."""
    circuit = QuantumCircuit(1)
    circuit.sx(0)
    circuit.delay(3000.0, 0)
    circuit.sx(0)
    circuit.measure(0, 0)
    scheduled = schedule_circuit(circuit, device)
    window = find_idle_windows(scheduled)[0]
    return scheduled, window


class TestGSConfig:
    def test_position_bounds(self):
        with pytest.raises(MitigationError):
            GSConfig(position=1.5)
        with pytest.raises(MitigationError):
            GSConfig(position=-0.1)

    def test_default_is_alap(self):
        assert GSConfig().position == 1.0

    def test_sweep_values(self):
        values = position_sweep_values(5)
        assert values == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])
        with pytest.raises(MitigationError):
            position_sweep_values(1)


class TestMovableGate:
    def test_movable_gate_found(self, echo_schedule):
        scheduled, window = echo_schedule
        gate = movable_gate(scheduled, window)
        assert gate is not None and gate.name == "sx"

    def test_no_movable_gate_between_cx(self, device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.delay(2000.0, 0)
        circuit.delay(2000.0, 1)
        circuit.cx(0, 1)
        circuit.measure_all()
        scheduled = schedule_circuit(circuit, device)
        windows = find_idle_windows(scheduled)
        assert all(movable_gate(scheduled, w) is None for w in windows)
        assert tunable_windows(scheduled, windows) == []

    def test_tunable_windows_subset(self, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        windows = scheduled_su2_4q.idle_windows
        tunable = tunable_windows(scheduled, windows)
        assert set(w.index for w in tunable) <= set(w.index for w in windows)


class TestReschedule:
    def test_position_zero_moves_to_window_start(self, echo_schedule):
        scheduled, window = echo_schedule
        out = reschedule_gate(scheduled, window, GSConfig(0.0))
        moved = [t for t in out.timed_instructions if t.name == "sx"][1]
        assert moved.start_ns == pytest.approx(window.start_ns)
        assert out.validate_no_overlap()

    def test_position_half_centres_the_gate(self, echo_schedule):
        scheduled, window = echo_schedule
        out = reschedule_gate(scheduled, window, GSConfig(0.5))
        moved = sorted([t for t in out.timed_instructions if t.name == "sx"], key=lambda t: t.start_ns)[1]
        centre = window.start_ns + 0.5 * (window.duration_ns - moved.duration_ns)
        assert moved.start_ns == pytest.approx(centre)

    def test_position_one_stays_inside_window(self, echo_schedule):
        scheduled, window = echo_schedule
        out = reschedule_gate(scheduled, window, GSConfig(1.0))
        assert out.validate_no_overlap()

    def test_gate_count_unchanged(self, echo_schedule):
        scheduled, window = echo_schedule
        out = reschedule_gate(scheduled, window, GSConfig(0.3))
        assert out.count_ops() == scheduled.count_ops()

    def test_window_without_gate_is_untouched(self, device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.delay(2000.0, 0)
        circuit.delay(2000.0, 1)
        circuit.cx(0, 1)
        circuit.measure_all()
        scheduled = schedule_circuit(circuit, device)
        window = find_idle_windows(scheduled)[0]
        out = reschedule_gate(scheduled, window, GSConfig(0.5))
        assert [t.start_ns for t in out.sorted_instructions()] == [
            t.start_ns for t in scheduled.sorted_instructions()
        ]

    def test_original_schedule_untouched(self, echo_schedule):
        scheduled, window = echo_schedule
        starts_before = [t.start_ns for t in scheduled.sorted_instructions()]
        reschedule_gate(scheduled, window, GSConfig(0.0))
        assert [t.start_ns for t in scheduled.sorted_instructions()] == starts_before

    def test_apply_configuration_multiple_windows(self, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        windows = scheduled_su2_4q.idle_windows
        tunable = tunable_windows(scheduled, windows)
        if not tunable:
            pytest.skip("no tunable windows in this schedule")
        configs = {w.index: GSConfig(0.5) for w in tunable[:2]}
        out = apply_gs_configuration(scheduled, windows, configs)
        assert out.validate_no_overlap()
        assert out.count_ops() == scheduled.count_ops()

    def test_metadata_records_position(self, echo_schedule):
        scheduled, window = echo_schedule
        out = reschedule_gate(scheduled, window, GSConfig(0.25))
        assert out.metadata["gs_windows"][window.index] == 0.25


class TestPhysicalEffect:
    def test_gate_position_changes_measured_fidelity(self, device, device_noise):
        """Different echo positions give measurably different outcomes (Fig. 6)."""
        sim = NoisySimulator(device_noise)
        values = []
        for position in (0.0, 0.5, 1.0):
            compiled = transpile(hahn_echo_microbenchmark(delay_ns=20000.0, echo_position=0.5), device)
            window = max(compiled.idle_windows, key=lambda w: w.duration_ns)
            moved = reschedule_gate(compiled.scheduled, window, GSConfig(position))
            probs, _ = sim.measured_probabilities(moved)
            values.append(probs[0])
        assert max(values) - min(values) > 0.005
