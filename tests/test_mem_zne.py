"""Tests for measurement error mitigation and zero-noise extrapolation."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.exceptions import MitigationError
from repro.mitigation import (
    MeasurementMitigator,
    fold_circuit_global,
    linear_extrapolate,
    richardson_extrapolate,
    zne_expectation,
)
from repro.simulators import StatevectorSimulator, apply_readout_error


class TestMeasurementMitigator:
    def test_requires_confusion_matrices(self):
        with pytest.raises(MitigationError):
            MeasurementMitigator([])

    def test_rejects_non_stochastic_matrices(self):
        with pytest.raises(MitigationError):
            MeasurementMitigator([np.array([[0.9, 0.3], [0.2, 0.7]])])

    def test_rejects_wrong_shape(self):
        with pytest.raises(MitigationError):
            MeasurementMitigator([np.eye(4)])

    def test_from_device(self, device):
        mitigator = MeasurementMitigator.from_device(device, [0, 1, 2])
        assert mitigator.num_qubits == 3
        assert np.allclose(mitigator.confusions[0], device.readout_confusion_matrix(0))

    def test_inverts_readout_distortion_exactly(self, device):
        confusions = [device.readout_confusion_matrix(q) for q in (0, 1)]
        true = np.array([0.5, 0.0, 0.1, 0.4])
        distorted = apply_readout_error(true, confusions)
        recovered = MeasurementMitigator(confusions).mitigate_probabilities(distorted)
        assert np.allclose(recovered, true, atol=1e-9)

    def test_mitigate_counts_returns_quasi_counts(self, device):
        mitigator = MeasurementMitigator.from_device(device, [0])
        counts = {"0": 950, "1": 50}
        mitigated = mitigator.mitigate_counts(counts)
        assert sum(mitigated.values()) == pytest.approx(1000, rel=1e-6)
        assert mitigated["0"] > 950

    def test_clipping_keeps_distribution_normalised(self):
        confusion = np.array([[0.95, 0.1], [0.05, 0.9]])
        mitigator = MeasurementMitigator([confusion])
        # A distribution more extreme than the confusion allows -> negative raw inverse.
        mitigated = mitigator.mitigate_probabilities(np.array([1.0, 0.0]))
        assert mitigated.sum() == pytest.approx(1.0)
        assert (mitigated >= 0).all()

    def test_wrong_distribution_length(self, device):
        mitigator = MeasurementMitigator.from_device(device, [0, 1])
        with pytest.raises(MitigationError):
            mitigator.mitigate_probabilities(np.array([1.0, 0.0]))

    def test_from_calibration_counts(self):
        zero_counts = {"00": 920, "01": 40, "10": 38, "11": 2}
        one_counts = [
            {"10": 900, "00": 80, "11": 18, "01": 2},   # qubit 0 prepared in |1>
            {"01": 890, "00": 95, "11": 14, "10": 1},   # qubit 1 prepared in |1>
        ]
        mitigator = MeasurementMitigator.from_calibration_counts(zero_counts, one_counts)
        assert mitigator.num_qubits == 2
        # P(measure 1 | prepared 0) for qubit 0 is roughly (38 + 2) / 1000.
        assert mitigator.confusions[0][1, 0] == pytest.approx(0.04, abs=0.01)
        assert mitigator.confusions[0][1, 1] > 0.9

    def test_from_calibration_counts_wrong_arity(self):
        with pytest.raises(MitigationError):
            MeasurementMitigator.from_calibration_counts({"00": 10}, [{"10": 10}])


class TestFolding:
    def test_scale_one_is_identity(self, bell):
        folded = fold_circuit_global(bell, 1.0)
        assert len(folded) == len(bell)

    def test_scale_three_triples_gate_count(self, bell):
        folded = fold_circuit_global(bell, 3.0)
        assert len(folded) == 3 * len(bell)

    def test_folding_preserves_unitary(self, bound_su2_4q):
        folded = fold_circuit_global(bound_su2_4q, 3.0)
        assert np.allclose(folded.to_unitary(), bound_su2_4q.to_unitary(), atol=1e-8)

    def test_partial_fold_preserves_unitary(self, bell):
        folded = fold_circuit_global(bell, 2.0)
        assert np.allclose(folded.to_unitary(), bell.to_unitary(), atol=1e-9)
        assert len(folded) > len(bell)

    def test_invalid_scale(self, bell):
        with pytest.raises(MitigationError):
            fold_circuit_global(bell, 0.5)

    def test_measured_circuit_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        with pytest.raises(MitigationError):
            fold_circuit_global(circuit, 3.0)


class TestExtrapolation:
    def test_linear_recovers_intercept(self):
        scales = [1.0, 2.0, 3.0]
        values = [0.9 - 0.1 * s for s in scales]
        assert linear_extrapolate(scales, values) == pytest.approx(0.9)

    def test_richardson_exact_on_quadratic(self):
        scales = [1.0, 2.0, 3.0]
        values = [1.0 - 0.2 * s + 0.05 * s ** 2 for s in scales]
        assert richardson_extrapolate(scales, values) == pytest.approx(1.0)

    def test_requires_two_points(self):
        with pytest.raises(MitigationError):
            linear_extrapolate([1.0], [0.5])
        with pytest.raises(MitigationError):
            richardson_extrapolate([1.0, 1.0], [0.5, 0.6])

    def test_zne_expectation_with_synthetic_executor(self, bell):
        """An executor whose error grows linearly with circuit length is fully corrected."""

        def executor(circuit):
            return 1.0 - 0.01 * len(circuit)

        corrected, raw = zne_expectation(executor, bell, scale_factors=(1.0, 3.0, 5.0))
        assert len(raw) == 3
        assert corrected == pytest.approx(1.0, abs=1e-9)

    def test_zne_unknown_method(self, bell):
        with pytest.raises(MitigationError):
            zne_expectation(lambda c: 0.0, bell, method="spline")
