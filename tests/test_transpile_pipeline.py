"""Integration tests for the full transpilation pipeline."""

import numpy as np
import pytest

from repro.circuits import Parameter, QuantumCircuit, efficient_su2
from repro.exceptions import TranspilerError
from repro.simulators import NoiseModel, NoisySimulator, StatevectorSimulator
from repro.transpiler import transpile
from repro.vqe import build_applications


class TestTranspile:
    def test_requires_bound_parameters(self, device):
        ansatz = efficient_su2(3, reps=1)
        with pytest.raises(TranspilerError):
            transpile(ansatz, device)

    def test_result_fields(self, scheduled_su2_4q):
        result = scheduled_su2_4q
        assert result.cx_depth > 0
        assert result.num_idle_windows == len(result.idle_windows)
        assert len(result.physical_qubits) == 4
        assert result.scheduled.duration_ns > 0

    def test_scheduled_uses_hardware_basis(self, scheduled_su2_4q):
        ops = set(scheduled_su2_4q.scheduled.count_ops())
        assert ops <= {"rz", "sx", "x", "cx", "measure", "barrier"}

    def test_measurement_count_preserved(self, scheduled_su2_4q):
        assert scheduled_su2_4q.scheduled.count_ops()["measure"] == 4

    def test_explicit_physical_qubits(self, device, bound_su2_4q):
        circuit = bound_su2_4q.copy()
        circuit.measure_all()
        result = transpile(circuit, device, physical_qubits=[0, 1, 3, 5])
        assert result.physical_qubits == [0, 1, 3, 5]

    def test_asap_policy(self, device, bound_su2_4q):
        circuit = bound_su2_4q.copy()
        circuit.measure_all()
        alap = transpile(circuit, device, scheduling_policy="alap")
        asap = transpile(circuit, device, scheduling_policy="asap")
        assert alap.scheduled.duration_ns == pytest.approx(asap.scheduled.duration_ns)

    def test_transpiled_distribution_matches_logical_under_ideal_noise(self, device):
        """End-to-end check: layout + routing + basis + scheduling is semantics-preserving."""
        ansatz = efficient_su2(4, reps=1, entanglement="full")
        rng = np.random.default_rng(11)
        bound = ansatz.bind_parameters(rng.uniform(-1, 1, ansatz.num_parameters))
        logical_probs = StatevectorSimulator().probabilities(bound)
        bound_measured = bound.copy()
        bound_measured.measure_all()
        result = transpile(bound_measured, device)
        sim = NoisySimulator(NoiseModel.ideal(device))
        probs, _ = sim.measured_probabilities(result.scheduled)
        assert np.allclose(probs, logical_probs, atol=1e-7)

    def test_deterministic_for_same_input(self, device, bound_su2_4q):
        circuit = bound_su2_4q.copy()
        circuit.measure_all()
        first = transpile(circuit, device)
        second = transpile(circuit, device)
        assert first.physical_qubits == second.physical_qubits
        assert first.cx_depth == second.cx_depth
        assert first.num_idle_windows == second.num_idle_windows


class TestApplicationsCompile:
    @pytest.mark.parametrize("index", range(7))
    def test_every_paper_application_compiles(self, index):
        application = build_applications()[index]
        rng = np.random.default_rng(0)
        bound = application.ansatz.bind_parameters(
            rng.uniform(-np.pi, np.pi, application.num_parameters)
        )
        bound.measure_all()
        result = transpile(bound, application.device())
        assert result.cx_depth > 0
        assert result.num_idle_windows > 0
        assert result.scheduled.validate_no_overlap()
        assert len(result.physical_qubits) == application.num_qubits
