"""Reuse regression guards for the window-tuner fast path.

The H2 window-tuner sweep is the workload the engine's reuse machinery was
built for; its reuse fraction is recorded in ``BENCH_engine.json``
(``h2_window_tuner.reuse_fraction``) and must not silently regress.  These
tests replay the benchmark's sweep configuration and pin three facts:

* with segment-level reuse on, the sweep's reuse fraction clears the
  ``> 0.53`` floor — the ceiling PR 5's oracle measured for *prefix-only*
  reuse, which segment replay exists to break (the recorded value is ~0.87;
  raise the floor when the recorded value improves);
* canonicalisation still beats the plain time-sorted keying it replaced.
  This guard runs with segment reuse *off*: segments recover the post-
  divergence tail under either keying mode, so with segments on both modes
  converge to the same fraction and the comparison would be vacuous;
* the tuned energy is bit-identical across serial, thread and process
  tiers, and the counters honour each tier's determinism contract.  Serial
  and process repeat runs report *identical* stats (serial trivially;
  worker processes reset their reuse caches at shard start — ``_begin_shard``
  — so every shard's delta is a pure function of shard content).  The
  thread tier fans candidates of one batch out concurrently, so whether an
  item finds a sibling's prefix snapshot is timing: a prefix-skip can
  become a segment replay, shifting ``segment_hits`` (and the PTM kernel's
  matmul/fusion tallies) without changing any result.  What stays pinned
  on the thread tier: single-flight ``segment_misses`` (every distinct key
  missed exactly once however threads interleave) and the instruction
  totals ``instructions_simulated`` / ``instructions_reused``.

The canonical and exact engines process mathematically identical but
differently-ordered instruction sequences, so their tuned energies agree to
float tolerance but not bit for bit; bit-identity is guaranteed *within*
each keying mode across segment-reuse settings and execution tiers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import NoisyDensityMatrixEngine
from repro.simulators import NoiseModel
from repro.transpiler import transpile
from repro.vaqem import IndependentWindowTuner, TuningBudget
from repro.vqe import ExpectationEstimator, get_application

#: The prefix-only reuse ceiling measured by PR 5's oracle on this sweep.
#: Segment replay must stay strictly above it (recorded value ~0.87).
REUSE_FLOOR = 0.53

#: Full benchmark budget — used for the recorded-baseline guards.
FULL_BUDGET = dict(dd_resolution=4, gs_resolution=4, max_windows=10)

#: Reduced budget for the tier-determinism matrix (seven sweeps).
SMALL_BUDGET = dict(dd_resolution=2, gs_resolution=2, max_windows=4)


@pytest.fixture(scope="module")
def h2_sweep_inputs():
    application = get_application("UCCSD_H2")
    rng = np.random.default_rng(3)
    circuit = application.ansatz.bind_parameters(
        rng.uniform(-0.3, 0.3, application.num_parameters)
    )
    circuit.measure_all()
    device = application.device()
    compiled = transpile(circuit, device)
    return application, device, compiled


def _run_sweep(
    application,
    device,
    compiled,
    *,
    enable_canonicalisation=True,
    enable_segment_reuse=True,
    budget=FULL_BUDGET,
    parallelism=None,
    max_workers=2,
):
    noise_model = NoiseModel.from_device(device)
    engine = NoisyDensityMatrixEngine(
        noise_model,
        seed=11,
        enable_canonicalisation=enable_canonicalisation,
        enable_segment_reuse=enable_segment_reuse,
    )
    estimator = ExpectationEstimator(noise_model, seed=11, engine=engine)
    batch_kwargs = (
        {} if parallelism is None else {"parallelism": parallelism, "max_workers": max_workers}
    )
    tuner = IndependentWindowTuner(
        objective=lambda s: estimator.estimate(s, application.hamiltonian).value,
        budget=TuningBudget(**budget),
        batch_objective=lambda ss: [
            r.value
            for r in estimator.estimate_batch(ss, application.hamiltonian, **batch_kwargs)
        ],
    )
    result = tuner.tune(compiled.scheduled, compiled.idle_windows)
    engine.close()
    return result, engine.stats


@pytest.fixture(scope="module")
def canonical_sweep(h2_sweep_inputs):
    application, device, compiled = h2_sweep_inputs
    return _run_sweep(application, device, compiled)


@pytest.fixture(scope="module")
def canonical_noseg_sweep(h2_sweep_inputs):
    application, device, compiled = h2_sweep_inputs
    return _run_sweep(application, device, compiled, enable_segment_reuse=False)


def test_reuse_fraction_meets_recorded_baseline(canonical_sweep):
    _, stats = canonical_sweep
    assert stats.reuse_fraction > REUSE_FLOOR
    assert stats.segment_hits > 0
    assert 0.0 < stats.segment_hit_rate <= 1.0


def test_segment_reuse_is_bitwise_transparent_on_the_sweep(
    canonical_sweep, canonical_noseg_sweep
):
    # Segment replay applies the identical operator arrays in the identical
    # order a cold walk applies: the tuned energy is bit-identical, not
    # merely close, and the tuner walks the exact same candidate sequence.
    result, stats = canonical_sweep
    noseg_result, noseg_stats = canonical_noseg_sweep
    assert result.tuned_value == noseg_result.tuned_value
    assert result.num_evaluations == noseg_result.num_evaluations
    assert noseg_stats.segment_hits == 0
    assert stats.reuse_fraction > noseg_stats.reuse_fraction


def test_canonicalisation_beats_exact_keying(h2_sweep_inputs, canonical_noseg_sweep):
    # Run with segments off: segment replay recovers the post-divergence
    # tail under either keying mode, so with segments on both modes reach
    # the same fraction and the comparison would show nothing.
    application, device, compiled = h2_sweep_inputs
    canonical_result, canonical_stats = canonical_noseg_sweep
    exact_result, exact_stats = _run_sweep(
        application,
        device,
        compiled,
        enable_canonicalisation=False,
        enable_segment_reuse=False,
    )
    assert canonical_stats.reuse_fraction > exact_stats.reuse_fraction
    # Same model, different operator ordering: equal to tolerance.
    assert canonical_result.tuned_value == pytest.approx(
        exact_result.tuned_value, abs=1e-9
    )
    assert canonical_result.num_evaluations == exact_result.num_evaluations


class TestTierDeterminism:
    """Counters are a pure function of the workload on every tier, and the
    tuned energy is bit-identical across tiers."""

    @pytest.fixture(scope="class")
    def tier_sweeps(self, h2_sweep_inputs):
        application, device, compiled = h2_sweep_inputs
        sweeps = {}
        for tier in (None, "thread", "process"):
            sweeps[tier] = [
                _run_sweep(
                    application,
                    device,
                    compiled,
                    budget=SMALL_BUDGET,
                    parallelism=tier,
                )
                for _ in range(2)
            ]
        return sweeps

    #: Counters the thread tier cannot pin: snapshot-resume depth races turn
    #: prefix-skips into segment replays (and regroup the PTM kernel's fused
    #: runs), shifting the split — never the totals, never a result.
    TIMING_SPLIT_COUNTERS = frozenset(
        {"segment_hits", "segment_hit_rate", "instructions_fused", "ptm_matmuls"}
    )

    @pytest.mark.parametrize("tier", [None, "process"])
    def test_repeat_runs_are_identical(self, tier_sweeps, tier):
        (first_result, first_stats), (second_result, second_stats) = tier_sweeps[tier]
        assert first_result.tuned_value == second_result.tuned_value
        assert first_stats.as_dict() == second_stats.as_dict()
        assert first_stats.segment_hits > 0

    def test_thread_repeat_runs_pin_everything_but_the_hit_split(self, tier_sweeps):
        (first_result, first_stats), (second_result, second_stats) = tier_sweeps[
            "thread"
        ]
        assert first_result.tuned_value == second_result.tuned_value
        first, second = first_stats.as_dict(), second_stats.as_dict()
        pinned = set(first) - self.TIMING_SPLIT_COUNTERS
        assert {k: first[k] for k in pinned} == {k: second[k] for k in pinned}
        assert first_stats.segment_hits > 0
        assert second_stats.segment_hits > 0

    def test_energy_bit_identical_across_tiers(self, tier_sweeps):
        values = {sweeps[0][0].tuned_value for sweeps in tier_sweeps.values()}
        assert len(values) == 1

    def test_serial_and_thread_share_one_cache_profile(self, tier_sweeps):
        # One engine, one single-flight segment cache: every distinct key is
        # missed exactly once however threads interleave, and the scheduler's
        # item-level slicing keeps the instruction counters tier-invariant.
        # (segment_hits may legitimately differ: the thread tier starts items
        # before sibling snapshots exist, so fewer prefix skips, more replays.)
        serial = tier_sweeps[None][0][1]
        thread = tier_sweeps["thread"][0][1]
        for counter in (
            "segment_misses",
            "instructions_simulated",
            "instructions_reused",
            "prefix_resumes",
        ):
            assert getattr(serial, counter) == getattr(thread, counter)
