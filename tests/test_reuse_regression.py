"""Prefix-reuse regression guard for the window-tuner fast path.

The H2 window-tuner sweep is the workload the engine's prefix-reuse fast
path was built for; its reuse fraction is recorded in ``BENCH_engine.json``
(``h2_window_tuner.reuse_fraction``) and must not silently regress.  This
test replays the benchmark's sweep configuration and pins two facts:

* the canonical engine's reuse fraction stays at or above the floor below
  (the recorded value minus a safety margin — raise the floor when the
  recorded value improves);
* canonicalisation beats the plain time-sorted keying it replaced on the
  same sweep, so the commutation machinery keeps paying for itself.

The two engines process mathematically identical but differently-ordered
instruction sequences, so their tuned energies agree to float tolerance but
not bit for bit; bit-identity is guaranteed (and benchmarked) *within* each
keying mode across all execution tiers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import NoisyDensityMatrixEngine
from repro.simulators import NoiseModel
from repro.transpiler import transpile
from repro.vaqem import IndependentWindowTuner, TuningBudget
from repro.vqe import ExpectationEstimator, get_application

#: Keep in step with ``BENCH_engine.json``'s recorded
#: ``h2_window_tuner.reuse_fraction`` (floor = recorded minus ~2 points).
REUSE_FLOOR = 0.46


@pytest.fixture(scope="module")
def h2_sweep_inputs():
    application = get_application("UCCSD_H2")
    rng = np.random.default_rng(3)
    circuit = application.ansatz.bind_parameters(
        rng.uniform(-0.3, 0.3, application.num_parameters)
    )
    circuit.measure_all()
    device = application.device()
    compiled = transpile(circuit, device)
    return application, device, compiled


def _run_sweep(application, device, compiled, enable_canonicalisation):
    noise_model = NoiseModel.from_device(device)
    engine = NoisyDensityMatrixEngine(
        noise_model, seed=11, enable_canonicalisation=enable_canonicalisation
    )
    estimator = ExpectationEstimator(noise_model, seed=11, engine=engine)
    tuner = IndependentWindowTuner(
        objective=lambda s: estimator.estimate(s, application.hamiltonian).value,
        budget=TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=10),
        batch_objective=lambda ss: [
            r.value for r in estimator.estimate_batch(ss, application.hamiltonian)
        ],
    )
    result = tuner.tune(compiled.scheduled, compiled.idle_windows)
    engine.close()
    return result, engine.stats


def test_reuse_fraction_meets_recorded_baseline(h2_sweep_inputs):
    application, device, compiled = h2_sweep_inputs
    canonical_result, canonical_stats = _run_sweep(
        application, device, compiled, enable_canonicalisation=True
    )
    exact_result, exact_stats = _run_sweep(
        application, device, compiled, enable_canonicalisation=False
    )
    assert canonical_stats.reuse_fraction >= REUSE_FLOOR
    assert canonical_stats.reuse_fraction > exact_stats.reuse_fraction
    # Same model, different operator ordering: equal to tolerance.
    assert canonical_result.tuned_value == pytest.approx(
        exact_result.tuned_value, abs=1e-9
    )
    assert canonical_result.num_evaluations == exact_result.num_evaluations
