"""Unit tests for the QuantumCircuit IR."""

import math

import numpy as np
import pytest

from repro.circuits import Parameter, QuantumCircuit
from repro.circuits.gates import standard_gate
from repro.exceptions import CircuitError, ParameterError


class TestConstruction:
    def test_requires_positive_width(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_default_clbits_match_qubits(self):
        assert QuantumCircuit(3).num_clbits == 3

    def test_append_validates_qubit_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.x(2)

    def test_append_rejects_duplicate_qubits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(1, 1)

    def test_append_rejects_wrong_arity(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.append(standard_gate("cx"), [0])

    def test_append_rejects_bad_clbit(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.measure(0, 5)

    def test_named_helpers_chain(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert [inst.name for inst in circuit.instructions] == ["h", "cx"]

    def test_len_counts_instructions(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.x(0)
        assert len(circuit) == 2


class TestIntrospection:
    def test_count_ops(self, bell):
        assert bell.count_ops() == {"h": 1, "cx": 1}

    def test_depth_simple(self, bell):
        assert bell.depth() == 2

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.x(1)
        assert circuit.depth() == 1

    def test_cx_depth_counts_only_cx(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(1)
        circuit.cx(0, 1)
        assert circuit.cx_depth() == 2
        assert circuit.depth() == 4

    def test_barrier_synchronises_but_does_not_count(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.barrier()
        circuit.x(1)
        # The barrier orders x(1) after x(0) (depth 2) but contributes no
        # depth of its own (otherwise this would be 3).
        assert circuit.depth() == 2

    def test_parameters_collected(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        circuit = QuantumCircuit(1)
        circuit.rx(theta, 0)
        circuit.rz(phi, 0)
        assert circuit.parameters == frozenset({theta, phi})
        assert circuit.num_parameters == 2

    def test_sorted_parameters_by_name(self):
        circuit = QuantumCircuit(1)
        b, a = Parameter("b"), Parameter("a")
        circuit.rx(b, 0)
        circuit.rz(a, 0)
        assert [p.name for p in circuit.sorted_parameters()] == ["a", "b"]

    def test_measured_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.measure(1, 0)
        assert circuit.measured_qubits() == [(1, 0)]

    def test_draw_contains_gates(self, bell):
        text = bell.draw()
        assert "h" in text and "cx" in text


class TestTransformations:
    def test_bind_parameters_with_mapping(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1)
        circuit.ry(theta, 0)
        bound = circuit.bind_parameters({theta: 0.5})
        assert not bound.parameters
        assert bound.instructions[0].gate.params == (0.5,)

    def test_bind_parameters_with_sequence_sorted_order(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = QuantumCircuit(1)
        circuit.ry(b, 0)
        circuit.rz(a, 0)
        bound = circuit.bind_parameters([1.0, 2.0])  # a=1.0, b=2.0
        assert bound.instructions[0].gate.params == (2.0,)
        assert bound.instructions[1].gate.params == (1.0,)

    def test_bind_wrong_length_raises(self):
        circuit = QuantumCircuit(1)
        circuit.ry(Parameter("t"), 0)
        with pytest.raises(ParameterError):
            circuit.bind_parameters([1.0, 2.0])

    def test_copy_is_independent(self, bell):
        copy = bell.copy()
        copy.x(0)
        assert len(copy) == len(bell) + 1

    def test_compose_identity_mapping(self, bell):
        tail = QuantumCircuit(2)
        tail.x(1)
        combined = bell.compose(tail)
        assert [inst.name for inst in combined.instructions] == ["h", "cx", "x"]

    def test_compose_with_qubit_mapping(self):
        main = QuantumCircuit(3)
        sub = QuantumCircuit(2)
        sub.cx(0, 1)
        combined = main.compose(sub, qubits=[2, 0])
        assert combined.instructions[0].qubits == (2, 0)

    def test_compose_wrong_mapping_length(self, bell):
        with pytest.raises(CircuitError):
            bell.compose(QuantumCircuit(2), qubits=[0])

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0.3, 0)
        circuit.rz(0.7, 0)
        inverse = circuit.inverse()
        assert [inst.name for inst in inverse.instructions] == ["rz", "rx"]
        assert inverse.instructions[0].gate.params == (-0.7,)

    def test_inverse_rejects_measurements(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_circuit_times_inverse_is_identity(self, bound_su2_4q):
        product = bound_su2_4q.compose(bound_su2_4q.inverse())
        assert np.allclose(product.to_unitary(), np.eye(16), atol=1e-9)

    def test_remove_final_measurements(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure_all()
        stripped = circuit.remove_final_measurements()
        assert not stripped.has_measurements()
        assert stripped.count_ops() == {"h": 1}

    def test_measure_all_measures_every_qubit(self):
        circuit = QuantumCircuit(3)
        circuit.measure_all()
        assert sorted(q for q, _ in circuit.measured_qubits()) == [0, 1, 2]


class TestUnitary:
    def test_bell_unitary(self, bell):
        unitary = bell.to_unitary()
        state = unitary[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(state, expected, atol=1e-12)

    def test_unitary_requires_no_measurements(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        with pytest.raises(CircuitError):
            circuit.to_unitary()

    def test_unitary_requires_bound_parameters(self):
        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("t"), 0)
        with pytest.raises(ParameterError):
            circuit.to_unitary()

    def test_cx_orientation_in_full_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.cx(0, 1)
        state = circuit.to_unitary()[:, 0]
        assert np.allclose(np.abs(state) ** 2, [0, 0, 0, 1])

    def test_gate_on_second_qubit_embedding(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        state = circuit.to_unitary()[:, 0]
        assert np.allclose(np.abs(state) ** 2, [0, 1, 0, 0])
