"""Unit tests for the gate library."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits.gates import (
    Barrier,
    Delay,
    GATE_ARITY,
    Gate,
    Measure,
    standard_gate,
)
from repro.circuits.parameter import Parameter
from repro.exceptions import CircuitError, ParameterError

_MATRIX_GATES = [
    ("id", ()), ("x", ()), ("y", ()), ("z", ()), ("h", ()), ("s", ()), ("sdg", ()),
    ("t", ()), ("tdg", ()), ("sx", ()), ("sxdg", ()),
    ("rx", (0.3,)), ("ry", (1.2,)), ("rz", (-0.7,)), ("p", (0.4,)),
    ("u3", (0.5, 1.1, -0.2,)),
    ("cx", ()), ("cz", ()), ("swap", ()), ("rzz", (0.8,)), ("rxx", (0.8,)), ("cry", (0.6,)),
]


class TestMatrices:
    @pytest.mark.parametrize("name,params", _MATRIX_GATES)
    def test_matrices_are_unitary(self, name, params):
        matrix = standard_gate(name, *params).matrix()
        dim = matrix.shape[0]
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)

    @pytest.mark.parametrize("name,params", _MATRIX_GATES)
    def test_matrix_dimension_matches_arity(self, name, params):
        gate = standard_gate(name, *params)
        assert gate.matrix().shape == (2 ** gate.num_qubits,) * 2

    def test_x_matrix(self):
        assert np.allclose(standard_gate("x").matrix(), [[0, 1], [1, 0]])

    def test_h_squares_to_identity(self):
        h = standard_gate("h").matrix()
        assert np.allclose(h @ h, np.eye(2), atol=1e-12)

    def test_sx_squares_to_x(self):
        sx = standard_gate("sx").matrix()
        assert np.allclose(sx @ sx, standard_gate("x").matrix(), atol=1e-12)

    def test_cx_flips_target_when_control_set(self):
        cx = standard_gate("cx").matrix()
        # |10> -> |11> in big-endian ordering (control is qubit 0).
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[3])

    def test_rz_is_diagonal(self):
        rz = standard_gate("rz", 0.7).matrix()
        assert rz[0, 1] == 0 and rz[1, 0] == 0

    @given(theta=st.floats(-2 * math.pi, 2 * math.pi, allow_nan=False))
    def test_rotation_composition(self, theta):
        half = standard_gate("ry", theta / 2).matrix()
        full = standard_gate("ry", theta).matrix()
        assert np.allclose(half @ half, full, atol=1e-9)

    def test_rzz_diagonal_phases(self):
        theta = 0.9
        rzz = standard_gate("rzz", theta).matrix()
        assert np.allclose(np.diag(rzz), [
            np.exp(-1j * theta / 2), np.exp(1j * theta / 2),
            np.exp(1j * theta / 2), np.exp(-1j * theta / 2),
        ])


class TestInverse:
    @pytest.mark.parametrize("name,params", _MATRIX_GATES)
    def test_inverse_matrix(self, name, params):
        gate = standard_gate(name, *params)
        inverse = gate.inverse()
        product = inverse.matrix() @ gate.matrix()
        assert np.allclose(product, np.eye(product.shape[0]), atol=1e-12)

    def test_s_inverse_is_sdg(self):
        assert standard_gate("s").inverse().name == "sdg"

    def test_rotation_inverse_negates_angle(self):
        gate = standard_gate("rx", 0.5).inverse()
        assert gate.params == (-0.5,)

    def test_measure_has_no_inverse(self):
        with pytest.raises(CircuitError):
            Measure().inverse()


class TestParameterizedGates:
    def test_symbolic_gate_has_parameters(self):
        theta = Parameter("theta")
        gate = standard_gate("ry", theta)
        assert gate.is_parameterized()
        assert gate.parameters == frozenset({theta})

    def test_symbolic_matrix_raises(self):
        theta = Parameter("theta")
        with pytest.raises(ParameterError):
            standard_gate("ry", theta).matrix()

    def test_bind_produces_numeric_gate(self):
        theta = Parameter("theta")
        gate = standard_gate("ry", theta).bind({theta: 0.25})
        assert not gate.is_parameterized()
        assert gate.params == (0.25,)

    def test_bind_expression(self):
        theta = Parameter("theta")
        gate = standard_gate("rz", 2 * theta + 1).bind({theta: 0.5})
        assert gate.params[0] == pytest.approx(2.0)


class TestSpecialInstructions:
    def test_delay_duration(self):
        delay = Delay(120.0)
        assert delay.duration == 120.0
        assert np.allclose(delay.matrix(), np.eye(2))

    def test_negative_delay_rejected(self):
        with pytest.raises(CircuitError):
            Delay(-1.0)

    def test_barrier_identity(self):
        barrier = Barrier(3)
        assert barrier.num_qubits == 3
        assert np.allclose(barrier.matrix(), np.eye(8))

    def test_measure_has_no_matrix(self):
        with pytest.raises(CircuitError):
            Measure().matrix()


class TestStandardGateFactory:
    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            standard_gate("foo")

    def test_wrong_parameter_count(self):
        with pytest.raises(CircuitError):
            standard_gate("rx")
        with pytest.raises(CircuitError):
            standard_gate("x", 0.5)

    def test_arity_table_consistency(self):
        for name, params in _MATRIX_GATES:
            assert standard_gate(name, *params).num_qubits == GATE_ARITY[name]

    def test_equality_and_hash(self):
        assert standard_gate("rx", 0.5) == standard_gate("rx", 0.5)
        assert standard_gate("rx", 0.5) != standard_gate("rx", 0.6)
        assert len({standard_gate("x"), standard_gate("x")}) == 1
