"""Tests for the unified execution-engine subsystem (:mod:`repro.engine`).

Covers the engine parity guarantees the architecture promises:

* statevector and density-matrix engines agree on noise-free models,
* ``run_batch`` is order-stable and identical to sequential ``run`` calls,
  including under the content cache and the prefix-reuse fast path,
* the seeding contract (content-derived sampling randomness),
* the gate-matrix cache and the deterministic-counts satellite features,
* the engine-backed frontends (estimator batch path, window tuner batch
  sweeps, runtime-session job submission).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, efficient_su2
from repro.circuits.gates import Gate
from repro.engine import (
    FakeDeviceEngine,
    NoisyDensityMatrixEngine,
    StatevectorEngine,
    circuit_fingerprint,
    schedule_fingerprint,
)
from repro.exceptions import ParameterError
from repro.mitigation import DDConfig, insert_dd_sequences
from repro.mitigation.gate_scheduling import GSConfig, reschedule_gate
from repro.runtime import RuntimeSession
from repro.runtime.session import CircuitTimingModel
from repro.simulators import NoisySimulator, StatevectorSimulator
from repro.transpiler import transpile
from repro.vaqem import IndependentWindowTuner, TuningBudget
from repro.vqe import ExpectationEstimator


@pytest.fixture(scope="module")
def candidate_schedules(device):
    """A transpiled ansatz plus mitigation candidates differing inside windows."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(12)
    bound = ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
    bound.measure_all()
    compiled = transpile(bound, device)
    schedules = [compiled.scheduled]
    for window in compiled.idle_windows[:4]:
        schedules.append(reschedule_gate(compiled.scheduled, window, GSConfig(0.5)))
        try:
            schedules.append(insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", 1)))
        except Exception:
            pass
    return compiled, schedules


class TestFingerprints:
    def test_identical_circuits_share_fingerprints(self, bell):
        other = QuantumCircuit(2, name="other")
        other.h(0)
        other.cx(0, 1)
        assert circuit_fingerprint(bell) == circuit_fingerprint(other)

    def test_different_parameters_differ(self):
        a = QuantumCircuit(1)
        a.rx(0.5, 0)
        b = QuantumCircuit(1)
        b.rx(0.6, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_schedule_fingerprint_sensitive_to_content(self, candidate_schedules):
        compiled, schedules = candidate_schedules
        baseline = schedule_fingerprint(compiled.scheduled)
        assert schedule_fingerprint(compiled.scheduled.copy()) == baseline
        window = compiled.idle_windows[0]
        modified = insert_dd_sequences(compiled.scheduled, window, DDConfig("xx", 1))
        assert schedule_fingerprint(modified) != baseline


class TestStatevectorEngine:
    def test_expectation_matches_simulator(self, bound_su2_4q, tfim4):
        engine = StatevectorEngine(seed=3)
        expected = StatevectorSimulator().expectation(bound_su2_4q, tfim4)
        assert engine.expectation(bound_su2_4q, tfim4) == pytest.approx(expected, abs=1e-12)

    def test_state_cache_hits_on_identical_content(self, bound_su2_4q):
        engine = StatevectorEngine()
        first = engine.run(bound_su2_4q)
        second = engine.run(bound_su2_4q.copy())
        assert second.from_cache
        assert np.array_equal(first.state, second.state)

    def test_counts_deterministic_under_engine_seed(self, bell):
        bell_measured = bell.copy()
        bell_measured.measure_all()
        a = StatevectorEngine(seed=5).counts(bell_measured, shots=300)
        b = StatevectorEngine(seed=5).counts(bell_measured, shots=300)
        assert a == b
        assert sum(a.values()) == 300


class TestDensityEngineParity:
    def test_matches_simulator_bit_for_bit(self, device_noise, candidate_schedules):
        _, schedules = candidate_schedules
        # The reference is the raw dense simulator, so the engine must run the
        # dense kernel regardless of REPRO_ENGINE_KERNEL (the PTM kernel only
        # matches to float tolerance; tests/test_ptm_differential.py covers it).
        engine = NoisyDensityMatrixEngine(device_noise, seed=0, kernel="dense")
        simulator = NoisySimulator(device_noise)
        for scheduled in schedules:
            assert np.array_equal(
                engine.density_matrix(scheduled).data, simulator.run(scheduled).data
            )
        assert engine.stats.prefix_resumes > 0
        assert engine.stats.instructions_reused > 0

    def test_statevector_vs_density_on_noise_free_model(self, ideal_noise, bound_su2_4q, tfim4):
        """The two backends must agree when every noise process is disabled."""
        measured = bound_su2_4q.copy()
        measured.measure_all()
        compiled = transpile(measured, ideal_noise.device)
        noisy_value = NoisyDensityMatrixEngine(ideal_noise).expectation(compiled.scheduled, tfim4)
        ideal_value = StatevectorEngine().expectation(bound_su2_4q, tfim4)
        assert noisy_value == pytest.approx(ideal_value, abs=1e-8)

    def test_run_batch_order_stable_and_equals_sequential(self, device_noise, candidate_schedules):
        _, schedules = candidate_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        batch = engine.run_batch(schedules)
        sequential = [NoisyDensityMatrixEngine(device_noise, seed=1).run(s) for s in schedules]
        for batched, single in zip(batch, sequential):
            assert batched.fingerprint == single.fingerprint
            assert np.array_equal(batched.state.data, single.state.data)
            assert np.array_equal(batched.probabilities, single.probabilities)

    def test_batch_identical_under_threads_and_reversal(self, device_noise, candidate_schedules):
        _, schedules = candidate_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        forward = engine.run_batch(schedules)
        reverse_engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        reversed_results = reverse_engine.run_batch(
            list(reversed(schedules)), max_workers=4, parallelism="thread"
        )[::-1]
        for a, b in zip(forward, reversed_results):
            assert np.array_equal(a.state.data, b.state.data)

    def test_result_cache_hit_is_bit_identical(self, device_noise, scheduled_su2_4q):
        engine = NoisyDensityMatrixEngine(device_noise)
        first = engine.run(scheduled_su2_4q.scheduled)
        second = engine.run(scheduled_su2_4q.scheduled.copy())
        assert not first.from_cache and second.from_cache
        assert np.array_equal(first.state.data, second.state.data)

    def test_prefix_reuse_matches_cold_runs(self, device_noise, candidate_schedules):
        _, schedules = candidate_schedules
        warm = NoisyDensityMatrixEngine(device_noise)
        # The cold baseline disables *both* reuse axes (prefix snapshots and
        # segment replay) so it genuinely re-simulates every instruction.
        cold = NoisyDensityMatrixEngine(
            device_noise, enable_prefix_reuse=False, enable_segment_reuse=False
        )
        for scheduled in schedules:
            assert np.array_equal(
                warm.density_matrix(scheduled).data, cold.density_matrix(scheduled).data
            )
        assert warm.stats.instructions_reused > 0
        assert cold.stats.instructions_reused == 0
        assert cold.stats.segment_hits == 0 and cold.stats.segment_misses == 0

    def test_expectation_batch_equals_sequential(self, device_noise, candidate_schedules, tfim4):
        _, schedules = candidate_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=2)
        exact_batch = engine.expectation_batch(schedules, tfim4)
        assert exact_batch == [engine.expectation(s, tfim4) for s in schedules]
        sampled_batch = engine.expectation_batch(schedules, tfim4, shots=512)
        assert sampled_batch == [engine.expectation(s, tfim4, shots=512) for s in schedules]

    def test_unseeded_engine_draws_fresh_entropy(self, device_noise, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        engine = NoisyDensityMatrixEngine(device_noise)  # no seed
        samples = {tuple(sorted(engine.counts(scheduled, shots=64).items())) for _ in range(6)}
        assert len(samples) > 1  # independent draws, not content-frozen

    def test_cache_misses_after_noise_flag_toggle(self, device, scheduled_su2_4q):
        """Toggling the noise model's flags is supported; caches must not
        serve pre-toggle states."""
        from repro.simulators import NoiseModel

        noise = NoiseModel.from_device(device)
        # Pinned dense: the post-toggle reference below is the raw dense
        # simulator compared bit for bit.
        engine = NoisyDensityMatrixEngine(noise, kernel="dense")
        with_relaxation, _ = engine.measured_probabilities(scheduled_su2_4q.scheduled)
        noise.include_relaxation = False
        toggled, _ = engine.measured_probabilities(scheduled_su2_4q.scheduled)
        fresh, _ = NoisySimulator(noise).measured_probabilities(scheduled_su2_4q.scheduled)
        assert np.array_equal(toggled, fresh)
        assert not np.array_equal(toggled, with_relaxation)

    def test_counts_follow_seeding_contract(self, device_noise, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        a = NoisyDensityMatrixEngine(device_noise, seed=4).counts(scheduled, shots=256)
        b = NoisyDensityMatrixEngine(device_noise, seed=4).counts(scheduled, shots=256)
        c = NoisyDensityMatrixEngine(device_noise, seed=5).counts(scheduled, shots=256)
        assert a == b
        assert sum(a.values()) == 256
        assert a != c  # different engine seed, different samples


class TestFakeDeviceEngine:
    def test_transpile_cache_and_deterministic_counts(self, device, bound_su2_4q):
        measured = bound_su2_4q.copy()
        measured.measure_all()
        engine = FakeDeviceEngine(device, seed=6, shots=400)
        first = engine.run(measured)
        second = engine.run(measured.copy())
        assert engine.stats.transpile_cache_hits == 1
        assert second.from_cache
        assert first.counts == second.counts
        assert sum(first.counts.values()) == 400

    def test_expectation_matches_schedule_level_engine(self, device, bound_su2_4q, tfim4):
        measured = bound_su2_4q.copy()
        measured.measure_all()
        engine = FakeDeviceEngine(device, seed=6, shots=512)
        compiled = engine.transpile(measured)
        # Default sampling uses the engine's configured shots...
        sampled = engine.noisy_engine.expectation(compiled.scheduled, tfim4, shots=512)
        assert engine.expectation(measured, tfim4) == sampled
        # ...and an explicit shots=None requests the exact value.
        exact = engine.noisy_engine.expectation(compiled.scheduled, tfim4, shots=None)
        assert engine.expectation(measured, tfim4, shots=None) == exact

    def test_run_counts_sample_the_reported_probabilities(self, device, bound_su2_4q):
        measured = bound_su2_4q.copy()
        measured.measure_all()
        engine = FakeDeviceEngine(device, seed=2, shots=2000)
        result = engine.run(measured)
        empirical = np.zeros_like(result.probabilities)
        for bitstring, count in result.counts.items():
            empirical[int(bitstring, 2)] = count / 2000
        assert np.abs(empirical - result.probabilities).max() < 0.05
        # One submission registers exactly one schedule-level execution.
        assert engine.noisy_engine.stats.executions == 1

    def test_expectation_batch_matches_single_calls_with_default_shots(
        self, device, bound_su2_4q, tfim4
    ):
        measured = bound_su2_4q.copy()
        measured.measure_all()
        engine = FakeDeviceEngine(device, seed=7, shots=256)
        assert engine.expectation_batch([measured], tfim4) == [engine.expectation(measured, tfim4)]
        assert engine.expectation_batch([measured], tfim4, shots=None) == [
            engine.expectation(measured, tfim4, shots=None)
        ]

    def test_accepts_device_names(self, bell):
        engine = FakeDeviceEngine("fake_casablanca", seed=1, shots=64)
        measured = bell.copy()
        measured.measure_all()
        counts = engine.run(measured).counts
        assert sum(counts.values()) == 64


class TestEstimatorAndTunerBatchPaths:
    def test_estimate_batch_exact_equals_sequential(self, device_noise, candidate_schedules, tfim4):
        _, schedules = candidate_schedules
        estimator = ExpectationEstimator(device_noise, seed=9)
        sequential = [estimator.estimate(s, tfim4).value for s in schedules]
        batch = [r.value for r in estimator.estimate_batch(schedules, tfim4)]
        assert batch == sequential  # shots=None: bit-identical

    def test_tuner_batch_path_matches_sequential_path(self, device_noise, candidate_schedules, tfim4):
        compiled, _ = candidate_schedules
        budget = TuningBudget(dd_resolution=2, gs_resolution=2, max_windows=3)

        def tuned(batched: bool):
            estimator = ExpectationEstimator(device_noise, seed=9)
            tuner = IndependentWindowTuner(
                objective=lambda s: estimator.estimate(s, tfim4).value,
                budget=budget,
                batch_objective=(
                    (lambda ss: [r.value for r in estimator.estimate_batch(ss, tfim4)])
                    if batched
                    else None
                ),
            )
            return tuner.tune(compiled.scheduled, compiled.idle_windows)

        sequential = tuned(batched=False)
        batched = tuned(batched=True)
        assert batched.baseline_value == sequential.baseline_value
        assert batched.tuned_value == sequential.tuned_value
        assert batched.num_evaluations == sequential.num_evaluations
        assert batched.chosen_configurations() == sequential.chosen_configurations()


class TestRuntimeSessionSubmission:
    def test_submit_splits_jobs_and_charges_time(self, device, device_noise, scheduled_su2_4q):
        engine = NoisyDensityMatrixEngine(device_noise, seed=0)
        timing = CircuitTimingModel(shots=128, per_job_overhead_s=2.0)
        session = RuntimeSession(engine=engine, timing=timing)
        session.constraints.max_circuits_per_job = 2
        schedules = [scheduled_su2_4q.scheduled] * 5
        results = session.submit(schedules)
        assert len(results) == 5
        assert session.num_jobs == 3  # 2 + 2 + 1
        assert session.num_circuits == 5
        assert session.elapsed_seconds > 3 * timing.per_job_overhead_s
        fingerprints = {r.fingerprint for r in results}
        assert len(fingerprints) == 1  # identical circuits, cached execution

    def test_submit_without_engine_raises(self):
        from repro.exceptions import RuntimeSessionError

        session = RuntimeSession(lambda p: 0.0)
        with pytest.raises(RuntimeSessionError):
            session.submit([])


class TestSatellites:
    def test_gate_matrix_cache_returns_shared_readonly_arrays(self):
        a = Gate("h", 1).matrix()
        b = Gate("h", 1).matrix()
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 2.0
        rx = Gate("rx", 1, (0.25,)).matrix()
        assert rx is Gate("rx", 1, (0.25,)).matrix()
        assert rx is not Gate("rx", 1, (0.5,)).matrix()

    def test_parameterized_matrix_still_raises(self):
        from repro.circuits.parameter import Parameter

        theta = Parameter("t")
        with pytest.raises(ParameterError):
            Gate("rx", 1, (theta,)).matrix()

    def test_statevector_counts_deterministic_with_explicit_seed(self, bell):
        measured = bell.copy()
        measured.measure_all()
        simulator = StatevectorSimulator(seed=1)
        simulator.counts(measured, shots=50)  # consume the stateful generator
        a = simulator.counts(measured, shots=200, seed=77)
        b = StatevectorSimulator(seed=99).counts(measured, shots=200, seed=77)
        assert a == b

    def test_noisy_counts_deterministic_with_explicit_seed(self, device_noise, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        simulator = NoisySimulator(device_noise, seed=1)
        simulator.counts(scheduled, shots=50)  # consume the stateful generator
        a = simulator.counts(scheduled, shots=200, seed=77)
        b = NoisySimulator(device_noise, seed=99).counts(scheduled, shots=200, seed=77)
        assert a == b
