"""Unit tests for symbolic circuit parameters."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.circuits.parameter import (
    Parameter,
    ParameterExpression,
    ParameterVector,
    bind_value,
    free_parameters,
)
from repro.exceptions import ParameterError


class TestParameter:
    def test_name(self):
        theta = Parameter("theta")
        assert theta.name == "theta"

    def test_invalid_name_raises(self):
        with pytest.raises(ParameterError):
            Parameter("")

    def test_same_name_distinct_identity(self):
        a, b = Parameter("x"), Parameter("x")
        assert a != b
        assert len({a, b}) == 2

    def test_parameter_is_its_own_expression(self):
        theta = Parameter("theta")
        assert theta.parameters == frozenset({theta})
        assert theta.coefficient(theta) == 1.0

    def test_repr(self):
        assert "theta" in repr(Parameter("theta"))


class TestParameterExpression:
    def test_add_constant(self):
        theta = Parameter("t")
        expr = theta + 2.0
        assert expr.bind({theta: 1.0}) == pytest.approx(3.0)

    def test_radd_and_rsub(self):
        theta = Parameter("t")
        assert (2.0 + theta).bind({theta: 1.0}) == pytest.approx(3.0)
        assert (2.0 - theta).bind({theta: 1.0}) == pytest.approx(1.0)

    def test_scale_and_negate(self):
        theta = Parameter("t")
        expr = -(3.0 * theta)
        assert expr.bind({theta: 2.0}) == pytest.approx(-6.0)

    def test_division(self):
        theta = Parameter("t")
        assert (theta / 4).bind({theta: 2.0}) == pytest.approx(0.5)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Parameter("t") / 0

    def test_add_two_parameters(self):
        a, b = Parameter("a"), Parameter("b")
        expr = 2 * a + b - 1
        assert expr.parameters == frozenset({a, b})
        assert expr.bind({a: 1.0, b: 3.0}) == pytest.approx(4.0)

    def test_partial_binding_keeps_expression(self):
        a, b = Parameter("a"), Parameter("b")
        partial = (a + b).bind({a: 1.0})
        assert isinstance(partial, ParameterExpression)
        assert partial.parameters == frozenset({b})
        assert partial.bind({b: 2.0}) == pytest.approx(3.0)

    def test_numeric_requires_full_binding(self):
        a = Parameter("a")
        with pytest.raises(ParameterError):
            (a + 1).numeric()

    def test_zero_coefficient_cancels(self):
        a = Parameter("a")
        expr = a - a
        assert expr.is_bound()
        assert expr.numeric() == pytest.approx(0.0)

    def test_multiply_by_expression_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        with pytest.raises(TypeError):
            a * b

    def test_equality_with_number(self):
        expr = ParameterExpression({}, 1.5)
        assert expr == 1.5

    @given(
        coeff=st.floats(-10, 10, allow_nan=False),
        const=st.floats(-10, 10, allow_nan=False),
        value=st.floats(-10, 10, allow_nan=False),
    )
    def test_affine_binding_matches_arithmetic(self, coeff, const, value):
        theta = Parameter("t")
        expr = coeff * theta + const
        assert expr.bind({theta: value}) == pytest.approx(coeff * value + const)


class TestParameterVector:
    def test_length_and_names(self):
        vec = ParameterVector("phi", 4)
        assert len(vec) == 4
        assert vec[2].name == "phi[2]"

    def test_iteration(self):
        vec = ParameterVector("phi", 3)
        assert [p.name for p in vec] == ["phi[0]", "phi[1]", "phi[2]"]

    def test_negative_length_raises(self):
        with pytest.raises(ParameterError):
            ParameterVector("phi", -1)


class TestHelpers:
    def test_bind_value_passthrough(self):
        assert bind_value(1.5, {}) == 1.5

    def test_bind_value_expression(self):
        theta = Parameter("t")
        assert bind_value(theta, {theta: math.pi}) == pytest.approx(math.pi)

    def test_free_parameters_union(self):
        a, b = Parameter("a"), Parameter("b")
        assert free_parameters([a + 1, 2.0, b]) == frozenset({a, b})
