"""Tests for noise-model construction and channel generation."""

import numpy as np
import pytest

from repro.simulators import NoiseModel, is_valid_channel


class TestFlavours:
    def test_calibration_excludes_coherent(self, device):
        model = NoiseModel.from_calibration(device)
        assert not model.include_coherent_errors
        assert not model.include_crosstalk
        assert model.include_relaxation and model.include_gate_error

    def test_device_includes_coherent(self, device):
        model = NoiseModel.from_device(device)
        assert model.include_coherent_errors and model.include_crosstalk

    def test_ideal_is_noiseless(self, device):
        model = NoiseModel.ideal(device)
        assert model.is_noiseless()
        assert not NoiseModel.from_device(device).is_noiseless()

    def test_repr_flavours(self, device):
        assert "device" in repr(NoiseModel.from_device(device))
        assert "calibration" in repr(NoiseModel.from_calibration(device))
        assert "ideal" in repr(NoiseModel.ideal(device))


class TestIdleChannels:
    def test_zero_duration_produces_nothing(self, device_noise):
        assert device_noise.idle_channels(0, 100.0, 100.0) == []

    def test_channels_are_trace_preserving(self, device_noise):
        ops = device_noise.idle_channels(0, 0.0, 500.0, idle_neighbors=[1])
        assert ops
        for op in ops:
            assert is_valid_channel(op.kraus)

    def test_coherent_component_present_only_in_device_flavour(self, device, device_noise, calibration_noise):
        device_ops = device_noise.idle_channels(0, 0.0, 1000.0)
        calib_ops = calibration_noise.idle_channels(0, 0.0, 1000.0)
        # The device flavour adds a unitary (single-Kraus) channel for the detuning.
        assert any(len(op.kraus) == 1 for op in device_ops)
        assert all(len(op.kraus) > 1 for op in calib_ops)

    def test_crosstalk_requires_idle_neighbors(self, device_noise):
        without = device_noise.idle_channels(0, 0.0, 1000.0, idle_neighbors=[])
        with_neighbor = device_noise.idle_channels(0, 0.0, 1000.0, idle_neighbors=[1])
        assert len(with_neighbor) == len(without) + 1
        two_qubit_ops = [op for op in with_neighbor if len(op.qubits) == 2]
        assert two_qubit_ops and two_qubit_ops[0].qubits == (0, 1)

    def test_time_offset_changes_drift_phase(self, device):
        base = NoiseModel.from_device(device)
        shifted = NoiseModel(device, time_offset_ns=25000.0)
        phase_a = [op for op in base.idle_channels(0, 0.0, 2000.0) if len(op.kraus) == 1]
        phase_b = [op for op in shifted.idle_channels(0, 0.0, 2000.0) if len(op.kraus) == 1]
        assert not np.allclose(phase_a[0].kraus[0], phase_b[0].kraus[0])


class TestGateChannels:
    def test_virtual_gates_are_noiseless(self, device_noise):
        assert device_noise.gate_channels("rz", [0]) == []
        assert device_noise.gate_channels("barrier", [0]) == []

    def test_cx_noise_covers_both_qubits(self, device_noise):
        ops = device_noise.gate_channels("cx", [0, 1])
        qubit_sets = [op.qubits for op in ops]
        assert (0,) in qubit_sets and (1,) in qubit_sets
        assert any(len(q) == 2 for q in qubit_sets)
        for op in ops:
            assert is_valid_channel(op.kraus)

    def test_gate_error_disabled(self, device):
        model = NoiseModel(device, include_gate_error=False)
        ops = model.gate_channels("cx", [0, 1])
        assert all(len(op.qubits) == 1 for op in ops)  # only relaxation remains

    def test_ideal_flavour_has_no_gate_noise(self, ideal_noise):
        assert ideal_noise.gate_channels("cx", [0, 1]) == []


class TestReadout:
    def test_confusion_identity_when_disabled(self, device, ideal_noise):
        assert np.allclose(ideal_noise.readout_confusion(0), np.eye(2))

    def test_confusion_matches_device(self, device, device_noise):
        assert np.allclose(device_noise.readout_confusion(2), device.readout_confusion_matrix(2))

    def test_measurement_prelude_relaxation(self, device_noise, ideal_noise):
        assert device_noise.measurement_prelude_channels(0)
        assert ideal_noise.measurement_prelude_channels(0) == []
