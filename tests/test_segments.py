"""Property suite for segment-level operator reuse (``repro.engine.segments``).

The segment-family differential harness: seeded window-tuner-style families
(``tests/randomized.py:segment_family`` — schedules diverging inside exactly
one idle window, plus benign permutations) drive the three contracts
``docs/segment_reuse.md`` documents:

* **Linearity / bit-exactness** — replaying a cached segment applies the
  identical operator arrays in the identical order as a cold walk, so states
  are bit-identical with the cache cold, warm, or disabled, on the dense and
  the PTM kernel; the *explicitly composed* segment operator agrees with
  step-wise evolution to ``<= 1e-12`` (composition reassociates the floats,
  which is exactly why the engine replays streams instead of composing).
* **Grid alignment** — segment boundaries land bitwise on the kernel's
  determinism grid: every boundary is a ``fusion_stride`` multiple, and
  off-grid stops fall back to the plain walk without perturbing results or
  work counters.
* **Keying** — segment hashes are invariant under benign permutations (the
  canonicalisation oracle's allowed reorderings) and distinct across
  non-commuting edits: a parameter bump, a reordered non-commuting pair, a
  DD/GS edit inside a window.  Shared keys across a family imply shared
  operator streams, which the differential harness checks by replaying every
  member from one shared cache against its own cold walk.

Every failure reproduces from the seed in its assertion message alone.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np
import pytest

import randomized
from repro.circuits.gates import Gate
from repro.engine import NoisyDensityMatrixEngine
from repro.engine.canonical import commutes, instruction_footprints
from repro.engine.segments import (
    SegmentCache,
    SegmentRuntime,
    schedule_segment_keys,
    segment_spans,
)
from repro.simulators import NoiseModel
from repro.simulators.density_matrix import DensityMatrix
from repro.simulators.noisy_simulator import NoisySimulator
from repro.simulators.ptm import PauliVectorState, PTMEvolver

#: Composition reassociates float products; stream replay is bitwise.
COMPOSE_ATOL = 1e-12

FAMILY_SEEDS = randomized.fuzz_seeds(4, offset=1200)
#: Smaller circuits for the composed-operator tests (the explicit dense
#: superoperator is (4**n, 4**n)).
SMALL_SEEDS = randomized.fuzz_seeds(2, offset=1250)


@pytest.fixture(scope="module")
def device():
    return randomized.fuzz_device()


@pytest.fixture(scope="module")
def noise(device):
    return NoiseModel.from_device(device)


@pytest.fixture(scope="module")
def families(device):
    return [
        randomized.segment_family(
            randomized.random_compiled(seed, device=device), seed
        )
        for seed in FAMILY_SEEDS
    ]


def dense_runtime(simulator, scheduled, context, cache):
    keys = schedule_segment_keys(simulator, scheduled, context, salt="t", stride=1)
    return SegmentRuntime(cache, keys)


def ptm_runtime(evolver, scheduled, context, cache):
    keys = schedule_segment_keys(
        evolver._simulator, scheduled, context, salt="t", stride=evolver.fusion_stride
    )
    return SegmentRuntime(cache, keys)


# ----------------------------------------------------------------------------
# Grid alignment
# ----------------------------------------------------------------------------

class TestSegmentSpans:
    @pytest.mark.parametrize("total,stride", [(0, 8), (1, 8), (7, 8), (8, 8), (9, 8), (25, 8), (5, 1)])
    def test_spans_tile_the_stride_grid(self, total, stride):
        spans = segment_spans(total, stride)
        assert len(spans) == -(-total // stride) if total else spans == []
        position = 0
        for start, stop in spans:
            assert start == position and start % stride == 0
            assert start < stop <= total
            position = stop
        assert position == total

    def test_one_key_per_span_both_kernels(self, device, noise):
        compiled = randomized.random_compiled(FAMILY_SEEDS[0], device=device)
        simulator = NoisySimulator(noise)
        evolver = PTMEvolver(noise)
        context = simulator.prepare(compiled.scheduled)
        total = len(context.ordered)
        dense_keys = schedule_segment_keys(simulator, compiled.scheduled, context, stride=1)
        ptm_keys = schedule_segment_keys(
            simulator, compiled.scheduled, context, stride=evolver.fusion_stride
        )
        assert len(dense_keys) == len(segment_spans(total, 1)) == total
        assert len(ptm_keys) == len(segment_spans(total, evolver.fusion_stride))
        # The stride is part of the key root: the two grids never collide.
        assert not set(dense_keys) & set(ptm_keys)

    def test_grid_stops_are_bitwise_transparent(self, device, noise):
        """Stopping/resuming at stride multiples with the segment cache on is
        bitwise identical — states and work counters — to the uninterrupted
        cache-off walk.  This is the boundary contract: segment records cover
        whole blocks, and the engine's checkpoint depths are stride-aligned,
        so replay never meets a torn block."""
        evolver = PTMEvolver(noise)
        scheduled = randomized.random_schedule(FAMILY_SEEDS[1], device=device)
        context = evolver.prepare(scheduled)
        total = len(context.ordered)
        plain = evolver.begin(scheduled, context)
        evolver.advance(scheduled, plain, context)
        one_shot = evolver.begin(scheduled, context)
        evolver.advance(
            scheduled, one_shot, context,
            segments=ptm_runtime(evolver, scheduled, context, SegmentCache()),
        )
        stepped = evolver.begin(scheduled, context)
        runtime = ptm_runtime(evolver, scheduled, context, SegmentCache())
        for stop in list(range(evolver.fusion_stride, total, evolver.fusion_stride)) + [total]:
            evolver.advance(scheduled, stepped, context, stop_index=stop, segments=runtime)
        for cursor in (one_shot, stepped):
            assert np.array_equal(plain.state.data, cursor.state.data)
            assert (cursor.matmuls, cursor.fused) == (plain.matmuls, plain.fused)

    def test_off_grid_stops_fall_back_identically(self, device, noise):
        """Arbitrary (off-grid) stop indices remain valid with segments on:
        the partial block falls back to the plain walk, so the run is bitwise
        identical to the *same stop sequence* without segments.  (Off-grid
        stops regroup the fusion runs relative to an uninterrupted walk —
        with or without the cache — which is why the engine only checkpoints
        on the stride grid.)"""
        evolver = PTMEvolver(noise)
        scheduled = randomized.random_schedule(FAMILY_SEEDS[1], device=device)
        context = evolver.prepare(scheduled)
        total = len(context.ordered)
        stops = sorted({3, 5, evolver.fusion_stride + 1, total // 2, total})
        reference = evolver.begin(scheduled, context)
        for stop in stops:
            evolver.advance(scheduled, reference, context, stop_index=stop)
        segmented = evolver.begin(scheduled, context)
        runtime = ptm_runtime(evolver, scheduled, context, SegmentCache())
        for stop in stops:
            evolver.advance(scheduled, segmented, context, stop_index=stop, segments=runtime)
        assert np.array_equal(reference.state.data, segmented.state.data)
        assert (segmented.matmuls, segmented.fused) == (reference.matmuls, reference.fused)


# ----------------------------------------------------------------------------
# Bit-exact replay (the differential harness)
# ----------------------------------------------------------------------------

class TestBitExactReplay:
    def test_dense_family_replay_from_shared_cache(self, families, noise):
        """Every family member, evolved against one shared segment cache —
        cold for the base, warm with its relatives' segments afterwards — is
        bit-identical to its own cache-off evolution.  Equal keys therefore
        implied equal operator streams on every collision the family
        produced."""
        simulator = NoisySimulator(noise)
        cache = SegmentCache()
        for family_seed, family in zip(FAMILY_SEEDS, families):
            for label, _, scheduled in family:
                context = simulator.prepare(scheduled)
                plain = simulator.begin(scheduled, context)
                simulator.advance(scheduled, plain, context)
                shared = simulator.begin(scheduled, context)
                simulator.advance(
                    scheduled, shared, context,
                    segments=dense_runtime(simulator, scheduled, context, cache),
                )
                assert np.array_equal(plain.state.data, shared.state.data), (
                    family_seed, label
                )

    def test_ptm_family_replay_from_shared_cache(self, families, noise):
        evolver = PTMEvolver(noise)
        cache = SegmentCache()
        for family_seed, family in zip(FAMILY_SEEDS, families):
            for label, _, scheduled in family:
                context = evolver.prepare(scheduled)
                plain = evolver.begin(scheduled, context)
                evolver.advance(scheduled, plain, context)
                shared = evolver.begin(scheduled, context)
                evolver.advance(
                    scheduled, shared, context,
                    segments=ptm_runtime(evolver, scheduled, context, cache),
                )
                assert np.array_equal(plain.state.data, shared.state.data), (
                    family_seed, label
                )
                # Replay re-counts the composed kernels exactly as the cold
                # fusion loop does.
                assert (shared.matmuls, shared.fused) == (plain.matmuls, plain.fused), (
                    family_seed, label
                )

    def test_warm_rerun_is_all_hits_and_bitwise(self, device, noise):
        simulator = NoisySimulator(noise)
        scheduled = randomized.random_schedule(FAMILY_SEEDS[2], device=device)
        context = simulator.prepare(scheduled)
        cache = SegmentCache()
        runtime = dense_runtime(simulator, scheduled, context, cache)
        cold = simulator.begin(scheduled, context)
        simulator.advance(scheduled, cold, context, segments=runtime)
        total = len(context.ordered)
        distinct = len(set(runtime.keys))
        # A schedule can repeat an identical segment (same instruction, same
        # absolute time, same idle context); the cold run already replays the
        # repeats, so misses count *distinct* keys.
        assert (cold.segment_misses, cold.segment_hits) == (distinct, total - distinct)
        warm = simulator.begin(scheduled, context)
        simulator.advance(scheduled, warm, context, segments=runtime)
        assert (warm.segment_misses, warm.segment_hits) == (0, total)
        assert warm.segment_instructions == total
        assert np.array_equal(cold.state.data, warm.state.data)


# ----------------------------------------------------------------------------
# Composed segment operator vs step-wise evolution
# ----------------------------------------------------------------------------

def _composed_dense_superop(ops, num_qubits):
    """The segment's single composed superoperator, built column by column
    (linearity: evolve each matrix-unit basis element through the recorded
    stream)."""
    dim = 2 ** num_qubits
    composed = np.zeros((dim * dim, dim * dim), dtype=complex)
    for column in range(dim * dim):
        basis = np.zeros((dim, dim), dtype=complex)
        basis[column // dim, column % dim] = 1.0
        rho = DensityMatrix(num_qubits, basis)
        for kind, payload, positions in ops:
            if kind == "unitary":
                rho.apply_unitary(payload, positions)
            else:
                rho.apply_superop(payload.superop, positions)
        composed[:, column] = rho.data.reshape(-1)
    return composed


def _composed_ptm_matrix(ops, num_qubits):
    dim = 4 ** num_qubits
    composed = np.zeros((dim, dim))
    for column in range(dim):
        state = PauliVectorState(num_qubits, data=np.eye(dim)[column])
        for kernel, positions, _ in ops:
            state.apply_ptm(kernel, positions)
        composed[:, column] = state.data[0]
    return composed


class TestComposedSegmentOperator:
    """The linearity argument, verified numerically: a segment *has* a single
    composed operator, and applying it once agrees with the step-wise walk to
    ``<= 1e-12`` (bitwise is reserved for stream replay, which is what the
    engine actually does)."""

    def test_dense_segments(self, device, noise):
        simulator = NoisySimulator(noise)
        for seed in SMALL_SEEDS:
            scheduled = randomized.random_schedule(seed, num_qubits=3, depth=6, device=device)
            context = simulator.prepare(scheduled)
            cache = SegmentCache()
            runtime = dense_runtime(simulator, scheduled, context, cache)
            full = simulator.begin(scheduled, context)
            simulator.advance(scheduled, full, context, segments=runtime)
            total = len(context.ordered)
            for index in {0, total // 2, total - 1}:
                entry = simulator.begin(scheduled, context)
                simulator.advance(scheduled, entry, context, stop_index=index)
                entry_vec = entry.state.data.reshape(-1).copy()
                record, claim = cache.acquire(runtime.keys[index])
                assert claim is None and record is not None
                composed = _composed_dense_superop(record.ops, scheduled.num_qubits)
                simulator.advance(scheduled, entry, context, stop_index=index + 1)
                stepped = entry.state.data.reshape(-1)
                np.testing.assert_allclose(
                    composed @ entry_vec, stepped, atol=COMPOSE_ATOL,
                    err_msg=f"seed {seed} segment {index}",
                )

    def test_ptm_blocks(self, device, noise):
        evolver = PTMEvolver(noise)
        stride = evolver.fusion_stride
        for seed in SMALL_SEEDS:
            scheduled = randomized.random_schedule(seed, num_qubits=3, depth=6, device=device)
            context = evolver.prepare(scheduled)
            cache = SegmentCache()
            runtime = ptm_runtime(evolver, scheduled, context, cache)
            full = evolver.begin(scheduled, context)
            evolver.advance(scheduled, full, context, segments=runtime)
            spans = segment_spans(len(context.ordered), stride)
            for number in {0, len(spans) // 2, len(spans) - 1}:
                start, stop = spans[number]
                entry = evolver.begin(scheduled, context)
                evolver.advance(scheduled, entry, context, stop_index=start)
                entry_vec = entry.state.data[0].copy()
                record, claim = cache.acquire(runtime.keys[number])
                assert claim is None and record is not None
                composed = _composed_ptm_matrix(record.ops, scheduled.num_qubits)
                evolver.advance(scheduled, entry, context, stop_index=stop)
                np.testing.assert_allclose(
                    composed @ entry_vec, entry.state.data[0], atol=COMPOSE_ATOL,
                    err_msg=f"seed {seed} block {number}",
                )


# ----------------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------------

def _keys(simulator, scheduled, stride=1):
    context = simulator.prepare(scheduled)
    return schedule_segment_keys(simulator, scheduled, context, salt="k", stride=stride)


def _parameter_edit(scheduled):
    """Bump the first float parameter by 0.1 — a semantic, non-benign edit."""
    out = scheduled.copy()
    instructions = list(out.timed_instructions)
    for index, timed in enumerate(instructions):
        gate = timed.instruction.gate
        if gate.params and isinstance(gate.params[0], float):
            bumped = Gate(
                gate.name, gate.num_qubits,
                (gate.params[0] + 0.1,) + tuple(gate.params[1:]),
            )
            instructions[index] = replace(
                timed, instruction=replace(timed.instruction, gate=bumped)
            )
            out.timed_instructions = instructions
            return out
    return None


def _non_commuting_swap(scheduled):
    """Swap one same-start non-commuting pair — the reordering
    :func:`randomized.benign_permutation` is forbidden to make, because it
    changes the canonical processing order and therefore the content."""
    out = scheduled.copy()
    base = out.sorted_instructions()
    footprints = instruction_footprints(out, base)
    for i in range(len(base) - 1):
        a, b = base[i], base[i + 1]
        if (
            a.start_ns == b.start_ns
            and "measure" not in (a.name, b.name)
            and not commutes(a, b, footprints[i], footprints[i + 1])
        ):
            order = list(base)
            order[i], order[i + 1] = order[i + 1], order[i]
            out.timed_instructions = order
            return out
    return None


class TestSegmentKeying:
    def test_invariant_under_benign_permutations(self, device, noise):
        simulator = NoisySimulator(noise)
        for seed in FAMILY_SEEDS:
            scheduled = randomized.random_schedule(seed, device=device)
            permuted = randomized.benign_permutation(scheduled, seed)
            for stride in (1, PTMEvolver.fusion_stride):
                assert _keys(simulator, scheduled, stride) == _keys(
                    simulator, permuted, stride
                ), (seed, stride)

    def test_distinct_across_parameter_edits(self, device, noise):
        simulator = NoisySimulator(noise)
        for seed in FAMILY_SEEDS:
            scheduled = randomized.random_schedule(seed, device=device)
            edited = _parameter_edit(scheduled)
            assert edited is not None, seed
            assert _keys(simulator, scheduled) != _keys(simulator, edited), seed

    def test_distinct_across_non_commuting_reorders(self, device, noise):
        simulator = NoisySimulator(noise)
        found = 0
        for seed in randomized.fuzz_seeds(12, offset=1300):
            scheduled = randomized.random_schedule(seed, device=device)
            swapped = _non_commuting_swap(scheduled)
            if swapped is None:
                continue
            found += 1
            assert _keys(simulator, scheduled) != _keys(simulator, swapped), seed
        assert found >= 1, "no seed produced a same-start non-commuting pair"

    def test_family_members_share_and_diverge(self, families, noise):
        """The reuse story in key space: a window-divergent variant shares
        segments with the base (that is what the cache exploits) yet differs
        somewhere (the edit is content); permutation members key identically
        to their sources."""
        simulator = NoisySimulator(noise)
        for family_seed, family in zip(FAMILY_SEEDS, families):
            keyed = [
                (label, _keys(simulator, scheduled))
                for label, _, scheduled in family
            ]
            base = keyed[0][1]
            # segment_family appends benign permutations of the first two
            # members, in order, after the window variants.
            permutations = [entry for entry in keyed if entry[0].startswith("perm_")]
            for (label, key_list), (_, source_keys) in zip(permutations, keyed):
                assert key_list == source_keys, (family_seed, label)
            for label, key_list in keyed[1:]:
                if label.startswith("perm_"):
                    continue
                assert key_list != base, (family_seed, label)
                assert set(key_list) & set(base), (family_seed, label)

    def test_salt_and_stride_partition_the_key_space(self, device, noise):
        simulator = NoisySimulator(noise)
        scheduled = randomized.random_schedule(FAMILY_SEEDS[0], device=device)
        context = simulator.prepare(scheduled)
        a = schedule_segment_keys(simulator, scheduled, context, salt="a")
        b = schedule_segment_keys(simulator, scheduled, context, salt="b")
        assert not set(a) & set(b)


# ----------------------------------------------------------------------------
# Cache concurrency semantics
# ----------------------------------------------------------------------------

class TestSegmentCache:
    def test_single_flight_blocks_racers_until_fulfil(self):
        cache = SegmentCache()
        record, claim = cache.acquire("key")
        assert record is None and claim is not None
        outcome = {}

        def racer():
            outcome["result"] = cache.acquire("key")

        thread = threading.Thread(target=racer)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "racer should block on the in-flight claim"
        fulfilled = cache.fulfil("key", claim, (("unitary", None, (0,)),), (), 1)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome["result"] == (fulfilled, None)

    def test_abandon_promotes_a_waiter_to_claimant(self):
        cache = SegmentCache()
        _, claim = cache.acquire("key")
        outcome = {}

        def racer():
            outcome["result"] = cache.acquire("key")

        thread = threading.Thread(target=racer)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()
        cache.abandon("key", claim)
        thread.join(timeout=5)
        record, new_claim = outcome["result"]
        assert record is None and new_claim is not None
        cache.abandon("key", new_claim)

    def test_lru_evicts_oldest_entry(self):
        cache = SegmentCache(max_entries=2)
        for key in ("a", "b", "c"):
            _, claim = cache.acquire(key)
            cache.fulfil(key, claim, (), (), 1)
        assert len(cache) == 2
        record, claim = cache.acquire("a")
        assert record is None, "oldest entry should have been evicted"
        cache.abandon("a", claim)
        for key in ("b", "c"):
            record, _ = cache.acquire(key)
            assert record is not None


# ----------------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------------

class TestEngineSegmentReuse:
    def test_family_sweep_bit_identical_with_cache_off(self, families, noise):
        on = NoisyDensityMatrixEngine(noise, seed=3)
        off = NoisyDensityMatrixEngine(noise, seed=3, enable_segment_reuse=False)
        try:
            for family_seed, family in zip(FAMILY_SEEDS, families):
                for label, _, scheduled in family:
                    assert np.array_equal(
                        on.run(scheduled).probabilities,
                        off.run(scheduled).probabilities,
                    ), (family_seed, label)
            assert on.stats.segment_hits > 0
            assert on.stats.instructions_reused > off.stats.instructions_reused
            assert off.stats.segment_hits == off.stats.segment_misses == 0
        finally:
            on.close()
            off.close()

    def test_counters_deterministic_across_reruns(self, families, noise):
        def sweep():
            engine = NoisyDensityMatrixEngine(noise, seed=3)
            try:
                for family in families:
                    for _, _, scheduled in family:
                        engine.run(scheduled)
                return engine.stats.as_dict()
            finally:
                engine.close()

        assert sweep() == sweep()

    def test_clear_caches_resets_segment_store(self, families, noise):
        engine = NoisyDensityMatrixEngine(noise, seed=3)
        try:
            _, _, scheduled = families[0][0]
            engine.run(scheduled)
            assert len(engine._segments) > 0
            engine.clear_caches()
            assert len(engine._segments) == 0
        finally:
            engine.close()
