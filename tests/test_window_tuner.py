"""Tests for the independent per-window tuner (the heart of VAQEM)."""

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import VAQEMError
from repro.mitigation import DDConfig, GSConfig
from repro.operators import PauliSum
from repro.simulators import NoiseModel
from repro.transpiler import find_idle_windows, schedule_circuit
from repro.vaqem import IndependentWindowTuner, TuningBudget, VAQEMConfig, WindowConfiguration
from repro.vqe import ExpectationEstimator


@pytest.fixture
def tuning_problem(device):
    """A 2-qubit schedule with two large idle windows and a ZZ-type objective."""
    circuit = QuantumCircuit(2)
    circuit.sx(0)
    circuit.sx(1)
    circuit.delay(4000.0, 0)
    circuit.delay(4000.0, 1)
    circuit.sx(0)
    circuit.sx(1)
    circuit.measure_all()
    scheduled = schedule_circuit(circuit, device)
    windows = find_idle_windows(scheduled)
    hamiltonian = PauliSum({"XI": 1.0, "IX": 1.0, "ZZ": 0.5})
    estimator = ExpectationEstimator(NoiseModel.from_device(device))

    def objective(candidate):
        return estimator.estimate(candidate, hamiltonian).value

    return scheduled, windows, objective


class TestConfiguration:
    def test_requires_a_technique(self, tuning_problem):
        _, _, objective = tuning_problem
        with pytest.raises(VAQEMError):
            IndependentWindowTuner(objective, tune_gate_scheduling=False, tune_dd=False)

    def test_budget_validation(self):
        with pytest.raises(VAQEMError):
            TuningBudget(dd_resolution=1)
        with pytest.raises(VAQEMError):
            TuningBudget(gs_resolution=0)
        with pytest.raises(VAQEMError):
            TuningBudget(max_windows=0)

    def test_window_configuration_baseline_detection(self):
        assert WindowConfiguration(0).is_baseline()
        assert WindowConfiguration(0, dd=DDConfig("xy4", 0)).is_baseline()
        assert not WindowConfiguration(0, dd=DDConfig("xy4", 1)).is_baseline()
        assert not WindowConfiguration(0, gs=GSConfig(0.5)).is_baseline()

    def test_vaqem_config_validation(self):
        with pytest.raises(VAQEMError):
            VAQEMConfig(tune_gate_scheduling=False, tune_dd=False)
        with pytest.raises(VAQEMError):
            VAQEMConfig(dd_sequence="bad")
        assert VAQEMConfig(tune_dd=True, tune_gate_scheduling=True).describe() == "VAQEM:GS+XY4"


class TestTuning:
    def test_tuned_value_never_worse_than_baseline(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(objective, budget=TuningBudget(dd_resolution=4, gs_resolution=3))
        result = tuner.tune(scheduled, windows)
        assert result.tuned_value <= result.baseline_value + 1e-12
        assert result.improvement >= 0.0

    def test_records_cover_every_window(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(objective, budget=TuningBudget(dd_resolution=3, gs_resolution=3))
        result = tuner.tune(scheduled, windows)
        assert len(result.window_records) == len(windows)
        for record in result.window_records:
            assert record.best is not None
            assert len(record.candidates) == len(record.values)
            assert record.best_value == pytest.approx(min(record.values))

    def test_evaluation_count_tracked(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(
            objective, tune_gate_scheduling=False, budget=TuningBudget(dd_resolution=3, gs_resolution=2)
        )
        result = tuner.tune(scheduled, windows)
        assert result.num_evaluations >= 1 + len(windows)

    def test_max_windows_limits_work(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(
            objective, budget=TuningBudget(dd_resolution=3, gs_resolution=2, max_windows=1)
        )
        result = tuner.tune(scheduled, windows)
        assert len(result.window_records) == 1

    def test_dd_only_configurations_have_no_gs(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(
            objective, tune_gate_scheduling=False, budget=TuningBudget(dd_resolution=4, gs_resolution=2)
        )
        result = tuner.tune(scheduled, windows)
        for config in result.chosen_configurations().values():
            assert config.gs is None

    def test_tuned_schedule_contains_chosen_pulses(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(
            objective, tune_gate_scheduling=False, dd_sequence="xx",
            budget=TuningBudget(dd_resolution=5, gs_resolution=2),
        )
        result = tuner.tune(scheduled, windows)
        accepted_pulses = sum(
            2 * config.dd.num_sequences
            for config in result.chosen_configurations().values()
            if config.dd is not None and not config.is_baseline()
        )
        added = len(result.tuned_schedule.timed_instructions) - len(scheduled.timed_instructions)
        assert added <= accepted_pulses  # greedy validation may drop some windows

    def test_greedy_combination_never_regresses(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        tuner = IndependentWindowTuner(objective, budget=TuningBudget(dd_resolution=4, gs_resolution=3))
        result = tuner.tune(scheduled, windows)
        assert objective(result.tuned_schedule) == pytest.approx(result.tuned_value)

    def test_apply_configurations_roundtrip(self, tuning_problem):
        scheduled, windows, objective = tuning_problem
        configs = {
            windows[0].index: WindowConfiguration(windows[0].index, dd=DDConfig("xx", 2)),
            windows[1].index: WindowConfiguration(windows[1].index, gs=GSConfig(0.5)),
        }
        out = IndependentWindowTuner.apply_configurations(scheduled, windows, configs)
        assert out.validate_no_overlap()
        assert len(out.timed_instructions) == len(scheduled.timed_instructions) + 4
