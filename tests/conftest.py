"""Shared fixtures for the test-suite.

Fixtures are deliberately small (2-4 qubit circuits, the 7-qubit Casablanca
model) so the whole suite stays fast; the heavier end-to-end paths are
exercised once in the integration tests with reduced tuning budgets.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backends import fake_casablanca
from repro.circuits import QuantumCircuit, efficient_su2
from repro.operators import tfim_hamiltonian
from repro.simulators import NoiseModel
from repro.transpiler import transpile


@pytest.fixture(scope="session")
def device():
    """A deterministic 7-qubit Casablanca-like device."""
    return fake_casablanca()


@pytest.fixture(scope="session")
def calibration_noise(device):
    return NoiseModel.from_calibration(device)


@pytest.fixture(scope="session")
def device_noise(device):
    return NoiseModel.from_device(device)


@pytest.fixture(scope="session")
def ideal_noise(device):
    return NoiseModel.ideal(device)


@pytest.fixture
def bell():
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def bound_su2_4q():
    """A 4-qubit SU2 ansatz with reproducible bound angles."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(42)
    return ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))


@pytest.fixture(scope="session")
def tfim4():
    return tfim_hamiltonian(4)


@pytest.fixture(scope="session")
def scheduled_su2_4q(device):
    """A transpiled, scheduled 4-qubit SU2 circuit with measurements."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(7)
    bound = ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
    bound.measure_all()
    return transpile(bound, device)
