"""Differential tests: engine-batched VQE objectives vs their serial twins.

The contract under test (``docs/algorithms.md``): a batch objective submitted
through the engine's batch path must produce the *same optimization
trajectory* as element-wise evaluation.  At ``shots=None`` (exact noisy
expectation) this is bit-for-bit; with sampling the batched path follows the
engine's content-derived seeding, so repeated batched runs agree bit-for-bit
with each other.
"""

import numpy as np
import pytest

from repro.operators import h2_hamiltonian, tfim_hamiltonian
from repro.optimizers import SPSA, BatchObjective
from repro.circuits import efficient_su2, qaoa_ansatz
from repro.vqe import VQE


@pytest.fixture(scope="module")
def tfim_vqe():
    ansatz = efficient_su2(4, reps=1, entanglement="linear")
    return VQE(ansatz, tfim_hamiltonian(4), seed=3)


class TestIdealBatchObjective:
    def test_protocol(self, tfim_vqe):
        assert isinstance(tfim_vqe.ideal_batch_objective(), BatchObjective)

    def test_matches_serial_objective_bitwise(self, tfim_vqe):
        batch = tfim_vqe.ideal_batch_objective()
        rng = np.random.default_rng(1)
        points = [rng.normal(0, 0.5, tfim_vqe.num_parameters()) for _ in range(4)]
        assert batch.evaluate_batch(points) == [
            tfim_vqe.ideal_objective(point) for point in points
        ]

    def test_call_is_single_point_batch(self, tfim_vqe):
        batch = tfim_vqe.ideal_batch_objective()
        point = np.full(tfim_vqe.num_parameters(), 0.2)
        assert batch(point) == batch.evaluate_batch([point])[0]

    def test_batched_spsa_identical_to_serial_spsa(self, tfim_vqe):
        # The tentpole differential: SPSA driving the BatchObjective must
        # reproduce SPSA driving the plain callable bit for bit.
        batch = tfim_vqe.ideal_batch_objective()
        initial = tfim_vqe.initial_point()
        serial = SPSA(maxiter=25, seed=11).minimize(tfim_vqe.ideal_objective, initial)
        batched = SPSA(maxiter=25, seed=11).minimize(batch, initial)
        assert batched.history == serial.history
        assert np.array_equal(batched.optimal_parameters, serial.optimal_parameters)
        assert batched.optimal_value == serial.optimal_value
        assert batched.num_evaluations == serial.num_evaluations

    def test_run_ideal_batched_flag(self, tfim_vqe):
        initial = tfim_vqe.initial_point()
        serial = tfim_vqe.run_ideal(initial_point=initial)
        batched = tfim_vqe.run_ideal(initial_point=initial, batched=True)
        assert batched.optimal_value == serial.optimal_value
        assert np.array_equal(batched.optimal_parameters, serial.optimal_parameters)


class TestNoisyBatchObjective:
    @pytest.fixture(scope="class")
    def h2_vqe(self):
        ansatz = efficient_su2(4, reps=1, entanglement="linear")
        return VQE(ansatz, h2_hamiltonian(), seed=5)

    def test_exact_batched_spsa_identical_to_serial(self, h2_vqe, device):
        # shots=None: the batched noisy objective equals the serial
        # noisy_objective_factory bit for bit (no sampling, so the stateful
        # vs content-derived rng distinction vanishes) — and therefore so do
        # the SPSA trajectories driving them.
        from repro.engine import NoisyDensityMatrixEngine
        from repro.simulators import NoiseModel

        noise_model = NoiseModel.from_device(device)
        initial = h2_vqe.initial_point()

        engine_a = NoisyDensityMatrixEngine(noise_model, seed=11)
        serial_objective = h2_vqe.noisy_objective_factory(
            device, noise_model=noise_model, shots=None, engine=engine_a
        )
        serial = SPSA(maxiter=4, seed=11).minimize(serial_objective, initial)
        engine_a.close()

        engine_b = NoisyDensityMatrixEngine(noise_model, seed=11)
        batch_objective = h2_vqe.noisy_batch_objective_factory(
            device, noise_model=noise_model, shots=None, engine=engine_b
        )
        batched = SPSA(maxiter=4, seed=11).minimize(batch_objective, initial)
        engine_b.close()

        assert batched.history == serial.history
        assert np.array_equal(batched.optimal_parameters, serial.optimal_parameters)
        assert batched.optimal_value == serial.optimal_value

    def test_sampled_batches_are_reproducible(self, h2_vqe, device):
        # With shots, the batched path draws content-derived samples: the
        # same points through the same seeded engine give identical values,
        # independent of batch shape.
        from repro.engine import NoisyDensityMatrixEngine
        from repro.simulators import NoiseModel

        noise_model = NoiseModel.from_device(device)
        rng = np.random.default_rng(2)
        points = [rng.normal(0, 0.3, h2_vqe.num_parameters()) for _ in range(3)]

        def evaluate(batch_shapes):
            engine = NoisyDensityMatrixEngine(noise_model, seed=11)
            objective = h2_vqe.noisy_batch_objective_factory(
                device, noise_model=noise_model, shots=128, engine=engine
            )
            values = []
            index = 0
            for size in batch_shapes:
                values.extend(objective.evaluate_batch(points[index : index + size]))
                index += size
            engine.close()
            return values

        assert evaluate([3]) == evaluate([1, 2])

    def test_protocol(self, h2_vqe, device):
        objective = h2_vqe.noisy_batch_objective_factory(device, shots=64)
        assert isinstance(objective, BatchObjective)


class TestQAOAWorkload:
    def test_batched_qaoa_matches_serial(self, device):
        from repro.operators import ring_maxcut_hamiltonian

        hamiltonian = ring_maxcut_hamiltonian(4)
        ansatz = qaoa_ansatz(4, [(0, 1), (1, 2), (2, 3), (3, 0)], reps=1)
        vqe = VQE(ansatz, hamiltonian, seed=9)
        batch = vqe.ideal_batch_objective()
        initial = vqe.initial_point()
        serial = SPSA(maxiter=20, seed=9).minimize(vqe.ideal_objective, initial)
        batched = SPSA(maxiter=20, seed=9).minimize(batch, initial)
        assert batched.history == serial.history
        # The optimizer actually makes progress on the MaxCut objective.
        assert batched.optimal_value < batch(initial)
