"""Randomized differential tests: the canonicalisation oracle.

Canonicalisation changes *keys and processing order*, never values — and the
engine's bit-exactness guarantees must survive it.  This suite drives ~50
seeded random schedules (``tests/randomized.py``; reproduce any failure from
its seed, see ``docs/testing.md``) through every claim:

* engine results equal the raw simulator's, bit for bit (both process the
  canonical order);
* a benign permutation of a schedule is indistinguishable from the original
  — same fingerprint, bit-identical states, probabilities and expectations —
  on the serial, thread and process tiers;
* prefix-resumed execution (a warm engine full of another schedule's
  checkpoints) is bit-identical to a cold run;
* seeded sampling draws identical counts for canonically-equal schedules,
  per the content-derived seeding contract;
* the statevector and fake-device engines keep exact parity with their
  underlying simulators under batching.
"""

from __future__ import annotations

import numpy as np
import pytest

import randomized
from repro.engine import (
    FakeDeviceEngine,
    NoisyDensityMatrixEngine,
    StatevectorEngine,
)
from repro.operators import tfim_hamiltonian
from repro.simulators import NoiseModel
from repro.simulators.noisy_simulator import NoisySimulator
from repro.simulators.statevector import StatevectorSimulator
from repro.transpiler import transpile

#: ~50 distinct random schedules drive this module (see individual tests).
ENGINE_SEEDS = randomized.fuzz_seeds(20)
TIER_SEEDS = randomized.fuzz_seeds(12, offset=100)
SAMPLING_SEEDS = randomized.fuzz_seeds(8, offset=200)
RESUME_SEEDS = randomized.fuzz_seeds(6, offset=300)
STATEVECTOR_SEEDS = randomized.fuzz_seeds(6, offset=400)


@pytest.fixture(scope="module")
def device():
    return randomized.fuzz_device()


@pytest.fixture(scope="module")
def observable():
    return tfim_hamiltonian(4)


class TestEngineVersusRawSimulator:
    # Both tests compare the engine bit for bit against the raw dense
    # simulator, so the dense kernel is pinned explicitly; the PTM kernel's
    # float-tolerance parity lives in tests/test_ptm_differential.py.
    def test_states_bit_identical(self, device):
        noise = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise, seed=7, kernel="dense")
        simulator = NoisySimulator(noise)
        for seed in ENGINE_SEEDS:
            scheduled = randomized.random_schedule(seed, device=device)
            expected = simulator.run(scheduled)
            result = engine.run(scheduled)
            assert np.array_equal(result.state.data, expected.data), f"seed {seed}"

    def test_probabilities_bit_identical(self, device):
        noise = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise, seed=7, kernel="dense")
        simulator = NoisySimulator(noise)
        for seed in ENGINE_SEEDS[:8]:
            scheduled = randomized.random_schedule(seed, device=device)
            expected, expected_clbits = simulator.measured_probabilities(scheduled)
            probabilities, clbits = engine.measured_probabilities(scheduled)
            assert clbits == expected_clbits
            assert np.array_equal(probabilities, expected), f"seed {seed}"


class TestCanonicalVariantParity:
    def test_serial_thread_process_tiers(self, device, observable):
        """Original and benignly-permuted schedules produce bit-identical
        expectations on every tier, and all tiers agree with each other."""
        noise = NoiseModel.from_device(device)
        compiled = [
            randomized.random_compiled(seed, device=device) for seed in TIER_SEEDS
        ]
        originals = [case.scheduled for case in compiled]
        variants = [
            randomized.benign_permutation(scheduled, seed)
            for scheduled, seed in zip(originals, TIER_SEEDS)
        ]
        values = {}
        for tier in ("serial", "thread", "process"):
            engine = NoisyDensityMatrixEngine(noise, seed=11)
            try:
                values[tier] = (
                    engine.expectation_batch(
                        originals, observable, parallelism=tier, max_workers=2
                    ),
                    engine.expectation_batch(
                        variants, observable, parallelism=tier, max_workers=2
                    ),
                )
            finally:
                engine.close()
        for tier, (original_values, variant_values) in values.items():
            assert original_values == variant_values, tier
        assert values["serial"] == values["thread"] == values["process"]

    def test_variant_fingerprints_and_cached_states(self, device):
        noise = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise, seed=11)
        for seed in TIER_SEEDS[:6]:
            scheduled = randomized.random_schedule(seed, device=device)
            variant = randomized.benign_permutation(scheduled, seed + 1)
            original = engine.run(scheduled)
            repeated = engine.run(variant)
            assert repeated.fingerprint == original.fingerprint
            assert repeated.from_cache
            assert np.array_equal(repeated.state.data, original.state.data)


class TestPrefixResumeExactness:
    def test_warm_engine_matches_cold_runs(self, device):
        """A warm engine resuming from another variant's checkpoints returns
        exactly what a cold engine computes from scratch."""
        noise = NoiseModel.from_device(device)
        warm = NoisyDensityMatrixEngine(noise, seed=3)
        resumes = 0
        for seed in RESUME_SEEDS:
            compiled = randomized.random_compiled(seed, device=device)
            family = randomized.schedule_family(compiled, seed)
            warm_states = [warm.run(item).state.data for item in family]
            resumes += warm.stats.prefix_resumes
            for item, warm_state in zip(family, warm_states):
                cold = NoisyDensityMatrixEngine(noise, seed=3)
                assert np.array_equal(cold.run(item).state.data, warm_state), (
                    f"seed {seed}"
                )
        # The fast path must actually have fired, or this test proves nothing.
        assert resumes > 0

    def test_resume_against_permuted_donor(self, device):
        """Checkpoints donated by a benignly-permuted copy are exact: both
        orders execute the identical canonical sequence."""
        noise = NoiseModel.from_device(device)
        for seed in RESUME_SEEDS[:3]:
            compiled = randomized.random_compiled(seed, device=device)
            family = randomized.schedule_family(compiled, seed)
            if len(family) < 2:
                continue
            donor_engine = NoisyDensityMatrixEngine(noise, seed=3)
            donor_engine.run(randomized.benign_permutation(family[0], seed))
            resumed = donor_engine.run(family[1]).state.data
            cold = NoisyDensityMatrixEngine(noise, seed=3)
            assert np.array_equal(cold.run(family[1]).state.data, resumed)


class TestSeededSampling:
    def test_counts_identical_for_canonical_equals(self, device):
        """Sampling seeds derive from the canonical fingerprint, so
        canonically-equal schedules draw identical counts."""
        noise = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise, seed=23)
        for seed in SAMPLING_SEEDS:
            scheduled = randomized.random_schedule(seed, device=device)
            variant = randomized.benign_permutation(scheduled, seed + 7)
            assert engine.counts(scheduled, shots=512) == engine.counts(
                variant, shots=512
            ), f"seed {seed}"

    def test_sampled_expectations_identical_across_tiers(self, device, observable):
        noise = NoiseModel.from_device(device)
        schedules = [
            randomized.random_schedule(seed, device=device)
            for seed in SAMPLING_SEEDS[:4]
        ]
        per_tier = {}
        for tier in ("serial", "thread"):
            engine = NoisyDensityMatrixEngine(noise, seed=23)
            try:
                per_tier[tier] = engine.expectation_batch(
                    schedules, observable, shots=256, parallelism=tier, max_workers=2
                )
            finally:
                engine.close()
        assert per_tier["serial"] == per_tier["thread"]


class TestOtherEngines:
    def test_statevector_engine_matches_simulator(self):
        engine = StatevectorEngine(seed=5)
        simulator = StatevectorSimulator()
        circuits = [
            randomized.random_circuit(seed, measure=False)
            for seed in STATEVECTOR_SEEDS
        ]
        batched = engine.run_batch(circuits)
        for circuit, result in zip(circuits, batched):
            assert np.array_equal(result.state, simulator.run_statevector(circuit))

    def test_fake_device_engine_matches_manual_pipeline(self, device, observable):
        noise = NoiseModel.from_device(device)
        engine = FakeDeviceEngine(device, noise_model=noise, seed=9)
        manual = NoisyDensityMatrixEngine(noise, seed=9)
        for seed in STATEVECTOR_SEEDS[:3]:
            circuit = randomized.random_circuit(seed)
            compiled = transpile(circuit, device)
            expected = manual.expectation(compiled.scheduled, observable, shots=None)
            assert engine.expectation(circuit, observable, shots=None) == expected
