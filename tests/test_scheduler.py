"""Tests for the slot-based batch scheduler (:mod:`repro.engine.scheduler`).

Covers the policies ``docs/scheduler.md`` promises:

* per-tier slots — independent batches overlap up to the tier's slot limit,
  the serial tier never overlaps;
* dependency detection — item-level edges: only items whose deep hash-chain
  entries overlap a running slice wait; batches sharing one item overlap on
  the rest, disjoint ones run concurrently, and the chain root (shared
  device/layout context) never counts as a conflict;
* fairness — round-robin across submitters keeps a saturating submitter from
  starving an occasional one; a priority hint overrides round-robin order;
* concurrent-frontend parity — two estimators sharing one engine get
  bit-identical values to a serial drain, with stats and caches merged
  correctly under racing completions;
* pool sharing — concurrent process-tier batches share one worker pool and
  never retire each other's workers;
* teardown — ``engine.close()`` is idempotent, drains pending futures, and
  is safe from inside a done-callback.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.circuits import efficient_su2
from repro.engine import (
    BatchScheduler,
    NoisyDensityMatrixEngine,
    StatevectorEngine,
    gather,
)
from repro.engine.parallel import EngineWorkerSpec, ProcessPoolRegistry
from repro.engine.scheduler import DEFAULT_SLOTS, job_chains, job_fingerprints
from repro.exceptions import EngineError
from repro.mitigation.gate_scheduling import GSConfig, reschedule_gate
from repro.transpiler import transpile
from repro.vqe import ExpectationEstimator

WORKERS = 2


# ----------------------------------------------------------------------------
# A controllable probe engine for scheduling-policy tests
# ----------------------------------------------------------------------------

class _ProbeEngine:
    """Engine stand-in that records batch concurrency and execution order.

    Batch items *are* their hash chains (tuples of strings), so tests inject
    conflicts directly; each batch carries a ``tag`` in its kwargs and can be
    gated on an event to hold it in its executing state.
    """

    def __init__(self):
        self.condition = threading.Condition()
        self.active: list = []
        self.started: list = []
        self.finished: list = []
        self.max_active = 0
        self.gates: dict = {}

    def _shard_chain(self, kind, item):
        return item

    def _dispatch_batch(self, kind, items, kwargs, max_workers, parallelism, chains=None):
        tag = kwargs["tag"]
        with self.condition:
            self.active.append(tag)
            self.started.append(tag)
            self.max_active = max(self.max_active, len(self.active))
            self.condition.notify_all()
        gate = self.gates.get(tag)
        if gate is not None and not gate.wait(timeout=10):  # pragma: no cover
            raise EngineError("test gate never opened")
        with self.condition:
            self.active.remove(tag)
            self.finished.append(tag)
            self.condition.notify_all()
        return [None] * len(items)

    def wait_started(self, count: int, timeout: float = 10.0) -> bool:
        with self.condition:
            return self.condition.wait_for(lambda: len(self.started) >= count, timeout)


def _items(prefix: str, count: int = 2):
    """Disjoint two-entry chains rooted in a shared (excluded) root."""
    return [("root", f"{prefix}-{index}") for index in range(count)]


def _submit(scheduler, tag, items, *, tier="thread", submitter=None, priority=0, gated=None):
    if gated is not None:
        gated.engine.gates.setdefault(tag, gated.event)
    return scheduler.submit(
        "run", items, {"tag": tag}, max_workers=WORKERS, parallelism=tier,
        submitter=submitter if submitter is not None else tag[0], priority=priority,
    )


class TestSlotPolicy:
    def test_disjoint_thread_batches_overlap_up_to_slot_limit(self):
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        for tag in ("A1", "B1", "C1"):
            engine.gates[tag] = gate
        futures = []
        futures += _submit(scheduler, "A1", _items("a"))
        futures += _submit(scheduler, "B1", _items("b"))
        futures += _submit(scheduler, "C1", _items("c"))
        assert engine.wait_started(2)
        # The third disjoint batch must wait: the thread tier has two slots.
        assert not engine.wait_started(3, timeout=0.25)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == DEFAULT_SLOTS["thread"] == 2

    def test_serial_tier_never_overlaps(self):
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        engine.gates["A1"] = gate
        engine.gates["B1"] = gate
        futures = _submit(scheduler, "A1", _items("a"), tier="serial")
        futures += _submit(scheduler, "B1", _items("b"), tier="serial")
        assert engine.wait_started(1)
        assert not engine.wait_started(2, timeout=0.25)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == 1

    def test_deep_prefix_conflicts_serialize(self):
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        engine.gates["A1"] = gate
        # The shared prefix covers 3 of 4 instructions — deep enough that
        # serializing preserves real checkpoint reuse.
        shared = [("root", "s1", "s2", "s3", "a-tail"), ("root", "other-1", "other-2")]
        overlapping = [("root", "s1", "s2", "s3", "b-tail")]
        futures = _submit(scheduler, "A1", shared)
        assert engine.wait_started(1)
        futures += _submit(scheduler, "B1", overlapping)
        assert not engine.wait_started(2, timeout=0.25)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == 1
        assert engine.started == ["A1", "B1"]

    def test_shallow_shared_prefix_does_not_serialize(self):
        # Same-ansatz frontends share their parameter-independent leading
        # instructions; that shallow prefix (1 of 4 here) is not worth
        # serializing for — the batches must overlap.
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        engine.gates["A1"] = gate
        engine.gates["B1"] = gate
        futures = _submit(
            scheduler,
            "A1",
            [("root", "prep", "a2", "a3", "a4"), ("root", "prep", "a2x", "a3x", "a4x")],
        )
        futures += _submit(
            scheduler,
            "B1",
            [("root", "prep", "b2", "b3", "b4"), ("root", "prep", "b2x", "b3x", "b4x")],
        )
        assert engine.wait_started(2)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == 2

    def test_identical_schedules_always_conflict(self):
        # Content-identical items share the full fingerprint, which is always
        # part of the conflict key no matter the chain length.
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        engine.gates["A1"] = gate
        same = [("root", "x1", "x2", "x3", "x4")]
        futures = _submit(scheduler, "A1", same)
        assert engine.wait_started(1)
        futures += _submit(scheduler, "B1", list(same))
        assert not engine.wait_started(2, timeout=0.25)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == 1

    def test_chain_roots_do_not_conflict(self):
        # Same root, disjoint instruction entries: must overlap.
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        engine.gates["A1"] = gate
        engine.gates["B1"] = gate
        futures = _submit(scheduler, "A1", [("root", "a-1"), ("root", "a-2")])
        futures += _submit(scheduler, "B1", [("root", "b-1"), ("root", "b-2")])
        assert engine.wait_started(2)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == 2


class TestItemLevelDependencies:
    """Conflicts are item-level edges, not whole-batch keys: a batch sharing
    one item with a running batch dispatches everything else immediately and
    holds back only the conflicting item (``docs/scheduler.md``)."""

    SHARED = ("root", "s1", "s2", "s3", "shared-tail")

    def test_batches_sharing_one_item_overlap_on_the_rest(self):
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate_a, gate_b = threading.Event(), threading.Event()
        engine.gates["A1"] = gate_a
        engine.gates["B1"] = gate_b
        futures = _submit(
            scheduler, "A1", [self.SHARED, ("root", "a-1"), ("root", "a-2")]
        )
        assert engine.wait_started(1)
        futures += _submit(
            scheduler, "B1", [self.SHARED, ("root", "b-1"), ("root", "b-2")]
        )
        # B's disjoint items dispatch while A runs — no whole-batch
        # serialization despite the shared item...
        assert engine.wait_started(2)
        assert engine.started == ["A1", "B1"]
        # ...but the shared item itself waits, even after B's partial slice
        # completes, until A releases its edge.
        gate_b.set()
        assert not engine.wait_started(3, timeout=0.25)
        gate_a.set()
        gather(futures)
        scheduler.shutdown()
        # The residual (the shared item) dispatched as a second B1 slice.
        assert engine.started == ["A1", "B1", "B1"]
        assert engine.max_active == 2

    def test_partially_dispatched_batch_keeps_submitter_fifo(self):
        """A batch is the head of its submitter's queue until *fully*
        dispatched: a later batch from the same submitter cannot leapfrog the
        held-back residual even when slots are free and its items are
        disjoint."""
        engine = _ProbeEngine()
        scheduler = BatchScheduler(
            engine, slots={"thread": 3, "process": 3}, name="test-scheduler"
        )
        gate_a, gate_b = threading.Event(), threading.Event()
        engine.gates["A1"] = gate_a
        engine.gates["B1"] = gate_b
        engine.gates["B2"] = gate_b
        futures = _submit(scheduler, "A1", [self.SHARED], submitter="A")
        assert engine.wait_started(1)
        futures += _submit(
            scheduler, "B1", [self.SHARED, ("root", "b-1")], submitter="B"
        )
        assert engine.wait_started(2)  # B1's disjoint item overlaps A1
        futures += _submit(scheduler, "B2", [("root", "c-1")], submitter="B")
        # A slot is free and B2 conflicts with nothing, but B1's residual
        # holds the head of B's queue.
        gate_b.set()
        assert not engine.wait_started(3, timeout=0.25)
        assert engine.started == ["A1", "B1"]
        gate_a.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.started[:2] == ["A1", "B1"]
        assert sorted(engine.started[2:]) == ["B1", "B2"]

    def test_conflicting_items_never_run_concurrently(self):
        """Whatever the interleaving, two slices carrying the same deep item
        are never simultaneously active (the parity tests check values; this
        pins the mutual exclusion itself)."""
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate = threading.Event()
        engine.gates["A1"] = gate
        futures = _submit(scheduler, "A1", [self.SHARED])
        assert engine.wait_started(1)
        futures += _submit(scheduler, "B1", [self.SHARED])
        futures += _submit(scheduler, "C1", [self.SHARED])
        assert not engine.wait_started(2, timeout=0.25)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.max_active == 1
        assert engine.started[0] == "A1"
        assert sorted(engine.started[1:]) == ["B1", "C1"]


class TestFairnessAndPriority:
    def _single_slot_scheduler(self, engine):
        return BatchScheduler(
            engine, slots={"thread": 1, "process": 1}, name="test-scheduler"
        )

    def test_round_robin_across_submitters(self):
        engine = _ProbeEngine()
        scheduler = self._single_slot_scheduler(engine)
        gate = threading.Event()
        engine.gates["A1"] = gate
        futures = _submit(scheduler, "A1", _items("a1"), submitter="A")
        assert engine.wait_started(1)
        # A saturates the queue, then B submits one batch.
        for index in range(2, 5):
            futures += _submit(scheduler, f"A{index}", _items(f"a{index}"), submitter="A")
        futures += _submit(scheduler, "B1", _items("b1"), submitter="B")
        gate.set()
        gather(futures)
        scheduler.shutdown()
        # Round-robin: B's single batch runs right after A's in-flight one,
        # not behind A's whole backlog.
        assert engine.finished.index("B1") < engine.finished.index("A3")

    def test_priority_overrides_round_robin(self):
        engine = _ProbeEngine()
        scheduler = self._single_slot_scheduler(engine)
        gate = threading.Event()
        engine.gates["A1"] = gate
        futures = _submit(scheduler, "A1", _items("a1"), submitter="A")
        assert engine.wait_started(1)
        futures += _submit(scheduler, "A2", _items("a2"), submitter="A")
        futures += _submit(scheduler, "B1", _items("b1"), submitter="B")
        futures += _submit(scheduler, "C1", _items("c1"), submitter="C", priority=5)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        # C outranks both queued heads despite submitting last.
        assert engine.started.index("C1") == 1

    def test_rotation_survives_emptied_queues(self):
        """Picking a submitter whose queue then empties must not skip the
        next submitter in rotation (the cursor is tracked by key, not by
        index into the mutating key list)."""
        engine = _ProbeEngine()
        scheduler = self._single_slot_scheduler(engine)
        gate = threading.Event()
        engine.gates["A1"] = gate
        futures = _submit(scheduler, "A1", _items("a1"), submitter="A")
        assert engine.wait_started(1)
        # One single-batch queue per submitter: each pick empties a queue.
        futures += _submit(scheduler, "A2", _items("a2"), submitter="A")
        futures += _submit(scheduler, "B1", _items("b1"), submitter="B")
        futures += _submit(scheduler, "C1", _items("c1"), submitter="C")
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.started == ["A1", "B1", "C1", "A2"]

    def test_scheduler_slots_are_per_engine(self):
        from repro.engine.scheduler import DEFAULT_SLOTS as defaults

        one = StatevectorEngine(seed=1)
        two = StatevectorEngine(seed=1)
        one.scheduler_slots["thread"] = 8
        assert two.scheduler_slots["thread"] == defaults["thread"] == 2
        one.close()
        two.close()

    def test_submitters_keep_fifo_among_themselves(self):
        engine = _ProbeEngine()
        scheduler = self._single_slot_scheduler(engine)
        gate = threading.Event()
        engine.gates["A1"] = gate
        futures = _submit(scheduler, "A1", _items("a1"), submitter="A")
        assert engine.wait_started(1)
        # A higher-priority later batch of the *same* submitter must not
        # leapfrog its own earlier batch (per-submitter FIFO).
        futures += _submit(scheduler, "A2", _items("a2"), submitter="A")
        futures += _submit(scheduler, "A3", _items("a3"), submitter="A", priority=9)
        gate.set()
        gather(futures)
        scheduler.shutdown()
        assert engine.started == ["A1", "A2", "A3"]


# ----------------------------------------------------------------------------
# Real-engine fingerprints
# ----------------------------------------------------------------------------

@pytest.fixture(scope="module")
def two_frontend_workloads(device):
    """Two disjoint schedule families, as two independent frontends produce."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(33)
    families = []
    for _ in range(2):
        bound = ansatz.bind_parameters(
            rng.uniform(-math.pi, math.pi, ansatz.num_parameters)
        )
        bound.measure_all()
        compiled = transpile(bound, device)
        schedules = [compiled.scheduled]
        for window in compiled.idle_windows[:2]:
            schedules.append(reschedule_gate(compiled.scheduled, window, GSConfig(0.5)))
        families.append(schedules)
    return families


@pytest.fixture(scope="module")
def overlapping_workloads(device):
    """Two families sharing exactly one schedule (the base): what two
    frontends sweeping different windows of one compiled circuit submit."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(55)
    bound = ansatz.bind_parameters(
        rng.uniform(-math.pi, math.pi, ansatz.num_parameters)
    )
    bound.measure_all()
    compiled = transpile(bound, device)
    base = compiled.scheduled
    first = [base, reschedule_gate(base, compiled.idle_windows[0], GSConfig(0.3))]
    second = [base, reschedule_gate(base, compiled.idle_windows[1], GSConfig(0.7))]
    return [first, second]


class TestJobFingerprints:
    def test_sweep_candidates_conflict_and_frontends_do_not(
        self, device, device_noise, two_frontend_workloads
    ):
        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        ansatz = efficient_su2(4, reps=2, entanglement="circular")
        rng = np.random.default_rng(44)
        bound = ansatz.bind_parameters(
            rng.uniform(-math.pi, math.pi, ansatz.num_parameters)
        )
        bound.measure_all()
        compiled = transpile(bound, device)
        # A candidate modifying a *late* window shares a deep prefix with the
        # base schedule -> conflict (serializing preserves checkpoint reuse).
        candidate = reschedule_gate(
            compiled.scheduled, compiled.idle_windows[-1], GSConfig(0.5)
        )
        base = job_fingerprints(job_chains(engine, "run", [compiled.scheduled]))
        late = job_fingerprints(job_chains(engine, "run", [candidate]))
        assert base & late
        # Different frontends' bound circuits share no meaningful prefix
        # (the chain root and shallow prep prefixes are excluded by design)
        # -> no conflict.
        first, second = two_frontend_workloads
        assert not job_fingerprints(job_chains(engine, "run", first)) & job_fingerprints(
            job_chains(engine, "run", second)
        )
        engine.close()

    def test_commuting_variants_serialize_textual_collisions_overlap(
        self, device, device_noise, two_frontend_workloads
    ):
        """Conflict keys digest the *canonical* order: two frontends
        submitting commuting variants of one schedule — identical content,
        differently-assembled instruction lists — collide on the canonical
        deep prefix and serialize, while schedules that merely look alike
        textually (same device, same ansatz shape, different parameters)
        share no conflict key and overlap."""
        import randomized

        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        ansatz = efficient_su2(4, reps=2, entanglement="circular")
        rng = np.random.default_rng(51)
        bound = ansatz.bind_parameters(
            rng.uniform(-math.pi, math.pi, ansatz.num_parameters)
        )
        bound.measure_all()
        compiled = transpile(bound, device)
        variant = randomized.benign_permutation(compiled.scheduled, 5)
        # The permutation genuinely reassembled the instruction list: the
        # plain time-sorted token streams disagree ...
        from repro.engine.fingerprint import timed_instruction_token

        assert [
            timed_instruction_token(t) for t in variant.sorted_instructions()
        ] != [
            timed_instruction_token(t)
            for t in compiled.scheduled.sorted_instructions()
        ]
        # ... yet the canonical conflict keys are identical, so the two
        # submissions serialize on the full deep prefix.
        base_keys = job_fingerprints(job_chains(engine, "run", [compiled.scheduled]))
        variant_keys = job_fingerprints(job_chains(engine, "run", [variant]))
        assert base_keys == variant_keys and base_keys
        # Control: a textual lookalike (another frontend's differently-bound
        # copy of the same ansatz) keeps disjoint keys and may overlap.
        lookalike = two_frontend_workloads[0][0]
        assert not job_fingerprints(
            job_chains(engine, "run", [lookalike])
        ) & base_keys
        engine.close()


# ----------------------------------------------------------------------------
# Two frontends sharing one engine (the multi-tenant story)
# ----------------------------------------------------------------------------

def _run_frontends_concurrently(engine, workloads, hamiltonian, tier="thread"):
    """Each workload runs on its own thread through its own estimator."""
    estimators = [
        ExpectationEstimator(engine.noise_model, seed=9, engine=engine) for _ in workloads
    ]
    results: dict = {}
    errors: list = []

    def frontend(index):
        try:
            futures = []
            for schedules in workloads[index]:
                futures.extend(
                    estimators[index].submit_batch(
                        schedules, hamiltonian, max_workers=WORKERS, parallelism=tier
                    )
                )
            results[index] = [r.value for r in gather(futures)]
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=frontend, args=(i,)) for i in range(len(workloads))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    return [results[index] for index in range(len(workloads))]


class TestConcurrentFrontendParity:
    @pytest.mark.parametrize("tier", ("thread", "process"))
    def test_bit_identical_to_serial_drain(
        self, device_noise, two_frontend_workloads, tfim4, tier
    ):
        # Each frontend submits its family in two batches to exercise
        # per-submitter FIFO alongside cross-submitter overlap.
        workloads = [
            [family[:2], family[2:]] for family in two_frontend_workloads
        ]
        shared = NoisyDensityMatrixEngine(device_noise, seed=3)
        concurrent = _run_frontends_concurrently(shared, workloads, tfim4, tier=tier)
        # Reference: a fresh engine draining the same schedules serially.
        reference_engine = NoisyDensityMatrixEngine(device_noise, seed=3)
        reference_estimator = ExpectationEstimator(
            device_noise, seed=9, engine=reference_engine
        )
        for family, values in zip(two_frontend_workloads, concurrent):
            blocking = [
                r.value for r in reference_estimator.estimate_batch(family, tfim4)
            ]
            assert values == blocking
        shared.close()
        reference_engine.close()

    @pytest.mark.parametrize("tier", ("thread", "process"))
    def test_overlapping_batches_bit_identical_to_serial_drain(
        self, device_noise, overlapping_workloads, tfim4, tier
    ):
        """Item-level edges under racing completions: the two frontends'
        batches share exactly one item (the base schedule), so the scheduler
        overlaps them on the candidates and serializes only the base — and
        the values still match a serial drain bit for bit on the thread and
        process tiers."""
        shared = NoisyDensityMatrixEngine(device_noise, seed=3)
        workloads = [[family] for family in overlapping_workloads]
        concurrent = _run_frontends_concurrently(shared, workloads, tfim4, tier=tier)
        reference_engine = NoisyDensityMatrixEngine(device_noise, seed=3)
        reference_estimator = ExpectationEstimator(
            device_noise, seed=9, engine=reference_engine
        )
        for family, values in zip(overlapping_workloads, concurrent):
            blocking = [
                r.value for r in reference_estimator.estimate_batch(family, tfim4)
            ]
            assert values == blocking
        # Both frontends agree on the shared base schedule exactly.
        assert concurrent[0][0] == concurrent[1][0]
        shared.close()
        reference_engine.close()

    def test_stats_and_caches_merge_under_racing_completions(
        self, device_noise, two_frontend_workloads, tfim4
    ):
        workloads = [[family] for family in two_frontend_workloads]
        shared = NoisyDensityMatrixEngine(device_noise, seed=3)
        _run_frontends_concurrently(shared, workloads, tfim4, tier="process")
        # The racing merges lost no counter updates: the parent's totals
        # match a serial drain of the *same* process-tier batches (identical
        # shard plans, so identical worker-side stats deltas).
        drain = NoisyDensityMatrixEngine(device_noise, seed=3)
        drain_estimator = ExpectationEstimator(device_noise, seed=9, engine=drain)
        for family in two_frontend_workloads:
            drain_estimator.estimate_batch(
                family, tfim4, max_workers=WORKERS, parallelism="process"
            )
        assert shared.stats.as_dict() == drain.stats.as_dict()
        # Every schedule's expectation landed in the parent caches exactly
        # once: a blocking re-query is all hits, no simulation.
        simulated = shared.stats.instructions_simulated
        executions = shared.stats.executions
        all_schedules = [s for family in two_frontend_workloads for s in family]
        requery = shared.expectation_batch(all_schedules, tfim4)
        assert shared.stats.instructions_simulated == simulated
        assert shared.stats.executions == executions
        assert requery == drain.expectation_batch(all_schedules, tfim4)
        shared.close()
        drain.close()


# ----------------------------------------------------------------------------
# Pool sharing across overlapping batches
# ----------------------------------------------------------------------------

class TestPoolSharing:
    def test_concurrent_process_batches_share_one_pool(
        self, device_noise, two_frontend_workloads, tfim4
    ):
        workloads = [[family] for family in two_frontend_workloads]
        shared = NoisyDensityMatrixEngine(device_noise, seed=4)
        _run_frontends_concurrently(shared, workloads, tfim4, tier="process")
        # Both frontends' process batches ran on one pool; nobody retired
        # the other's workers mid-flight.
        assert len(shared._pools.handles()) == 1
        shared.close()

    def test_registry_shares_live_pools_and_defers_stale_shutdown(self):
        registry = ProcessPoolRegistry()
        spec_a = EngineWorkerSpec(StatevectorEngine, {"seed": 1}, cache_key="ctx-a")
        executor_1, key_1 = registry.acquire(spec_a, 2)
        # A concurrent batch with a different worker count shares the live
        # pool instead of retiring it.
        executor_2, key_2 = registry.acquire(spec_a, 3)
        assert executor_2 is executor_1 and key_2 == key_1
        assert len(registry.handles()) == 1
        # A stale configuration must not rip the busy pool away: the old pool
        # survives until its last release, the new one coexists.
        spec_b = EngineWorkerSpec(StatevectorEngine, {"seed": 1}, cache_key="ctx-b")
        executor_3, key_3 = registry.acquire(spec_b, 2)
        assert executor_3 is not executor_1
        assert len(registry.handles()) == 2
        registry.release(key_1)
        assert len(registry.handles()) == 2  # still in use by the sharer
        registry.release(key_2)
        assert registry.handles() == [h for h in registry.handles() if h.key == key_3]
        registry.release(key_3)
        registry.shutdown()
        assert registry.handles() == []

    def test_registry_retires_idle_stale_pools_immediately(self):
        registry = ProcessPoolRegistry()
        spec_a = EngineWorkerSpec(StatevectorEngine, {"seed": 1}, cache_key="ctx-a")
        _, key = registry.acquire(spec_a, 2)
        registry.release(key)
        spec_b = EngineWorkerSpec(StatevectorEngine, {"seed": 1}, cache_key="ctx-b")
        _, key_b = registry.acquire(spec_b, 2)
        handles = registry.handles()
        assert [handle.key for handle in handles] == [key_b]
        registry.release(key_b)
        registry.shutdown()


# ----------------------------------------------------------------------------
# Engine teardown through the scheduler
# ----------------------------------------------------------------------------

class TestEngineClose:
    def test_close_is_idempotent_with_futures_pending(self, two_frontend_workloads, tfim4, device_noise):
        engine = NoisyDensityMatrixEngine(device_noise, seed=5)
        futures = engine.submit_expectation_batch(two_frontend_workloads[0], tfim4)
        engine.close()
        engine.close()  # second close with (now resolved) futures: no raise
        assert all(future.done() for future in futures)
        values = gather(futures)
        assert values == engine.expectation_batch(two_frontend_workloads[0], tfim4)
        engine.close()

    def test_concurrent_closes_both_drain(self, two_frontend_workloads, tfim4, device_noise):
        engine = NoisyDensityMatrixEngine(device_noise, seed=6)
        futures = engine.submit_expectation_batch(two_frontend_workloads[1], tfim4)
        threads = [threading.Thread(target=engine.close) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert all(future.done() for future in futures)
        gather(futures)

    def test_shutdown_during_partial_slice_drains_residual_items(self):
        """``close()`` while a batch is only *partially* dispatched must not
        drop the residual items.

        Batch B shares one item with a running batch A, so B dispatches a
        partial ``_RunningSlice`` (the disjoint item) while the conflicting
        item stays pending.  A shutdown issued in exactly that state has to
        wait for A, then dispatch B's residual as a second slice, and only
        then return — every future resolves, nothing is abandoned.
        """
        engine = _ProbeEngine()
        scheduler = BatchScheduler(engine, name="test-scheduler")
        gate_a, gate_b = threading.Event(), threading.Event()
        engine.gates["A1"] = gate_a
        engine.gates["B1"] = gate_b
        shared = [("root", "x", "x-deep")]
        futures = _submit(scheduler, "A1", shared)
        assert engine.wait_started(1)
        # B's first item conflicts with A's running slice; its second is
        # disjoint and dispatches immediately as a partial slice.
        futures += _submit(scheduler, "B1", shared + [("root", "y", "y-deep")])
        assert engine.wait_started(2)

        outcome = {}
        done = threading.Event()

        def close_now():
            outcome["drained"] = scheduler.shutdown(wait=True)
            done.set()

        closer = threading.Thread(target=close_now)
        closer.start()
        assert not done.wait(0.25)  # blocked on the in-flight slices
        gate_b.set()  # B's partial slice finishes; its residual still waits on A
        assert not done.wait(0.25)
        gate_a.set()
        assert done.wait(10)
        closer.join(timeout=10)
        assert outcome["drained"] is True
        gather(futures)  # every item resolved — the residual was not dropped
        assert engine.finished.count("B1") == 2  # residual ran as a second slice
        assert engine.finished.count("A1") == 1

    def test_close_from_done_callback_does_not_deadlock(self, logical_circuits_sched, tfim4, device_noise):
        engine = NoisyDensityMatrixEngine(device_noise, seed=7)
        closed = threading.Event()

        def close_engine(_future):
            engine.close()
            closed.set()

        futures = engine.submit_expectation_batch(logical_circuits_sched, tfim4)
        futures[-1].add_done_callback(close_engine)
        gather(futures)
        assert closed.wait(timeout=30)
        # The engine stays usable afterwards.
        assert gather(engine.submit_expectation_batch(logical_circuits_sched, tfim4)) == gather(futures)
        engine.close()


@pytest.fixture(scope="module")
def logical_circuits_sched(device):
    ansatz = efficient_su2(4, reps=1, entanglement="linear")
    rng = np.random.default_rng(12)
    bound = ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
    bound.measure_all()
    return [transpile(bound, device).scheduled]
