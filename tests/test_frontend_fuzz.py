"""Fuzzing harness for the frontend: valid programs round-trip bit-identically,
corrupted programs always fail with a typed :class:`IngestError`.

Seed conventions (documented in ``docs/testing.md``):

* ``fuzz_seeds(count, offset=2000)`` — random QASM round-trip cases,
* ``fuzz_seeds(count, offset=2200)`` — corruption / mutation cases,
* ``fuzz_seeds(count, offset=2400)`` — JSON wire-format cases.

Every failure message embeds the seed (and corruption kind), so any case can
be replayed standalone::

    PYTHONPATH=src python - <<'EOF'
    import sys; sys.path.insert(0, "tests")
    from randomized import random_qasm_case
    print(random_qasm_case(2042)[0])
    EOF
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from randomized import (
    CORRUPTION_KINDS,
    corrupt_program,
    fuzz_seeds,
    random_json_case,
    random_qasm_case,
)
from repro.backends import get_device
from repro.engine import FakeDeviceEngine, StatevectorEngine
from repro.engine.fingerprint import circuit_fingerprint
from repro.exceptions import IngestError, ParseError, ReproError
from repro.frontend import (
    ResourceLimits,
    circuit_from_json,
    circuit_to_json,
    circuit_to_qasm,
    ingest_qasm,
    parse_qasm,
    schedule_from_json,
    schedule_to_json,
)
from repro.transpiler.pipeline import transpile

QASM_SEEDS = fuzz_seeds(100, offset=2000)
CORRUPTION_SEEDS = fuzz_seeds(120, offset=2200)
JSON_SEEDS = fuzz_seeds(40, offset=2400)

# Parsing untrusted text must stay cheap; a case that takes this long has hit
# quadratic behaviour or an expansion the limits failed to cap.
FUZZ_LIMITS = ResourceLimits()


# ---------------------------------------------------------------------------
# Valid programs: parse -> identical instruction stream -> identical bits
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", QASM_SEEDS)
def test_qasm_parse_matches_reference_circuit(seed):
    """Parsing must reproduce the independently-built reference circuit
    instruction for instruction — same gates, params to the last bit."""
    text, reference = random_qasm_case(seed)
    circuit = parse_qasm(text, limits=FUZZ_LIMITS)
    assert circuit_fingerprint(circuit) == circuit_fingerprint(reference), (
        f"seed {seed}: parsed circuit diverged from reference"
    )


@pytest.mark.parametrize("seed", QASM_SEEDS)
def test_qasm_emitter_round_trip(seed):
    """circuit -> QASM text -> circuit is a fixed point (bit-identical)."""
    _, reference = random_qasm_case(seed)
    rebuilt = parse_qasm(circuit_to_qasm(reference), limits=FUZZ_LIMITS)
    assert circuit_fingerprint(rebuilt) == circuit_fingerprint(reference), (
        f"seed {seed}: emitter round trip diverged"
    )


@pytest.mark.parametrize("seed", QASM_SEEDS[:25])
def test_ingested_program_bit_identical_on_statevector(seed):
    """An ingested program and its reference circuit must produce the same
    sampled bits: same fingerprint => same derived seed => same counts."""
    text, reference = random_qasm_case(seed)
    program = ingest_qasm(text, limits=FUZZ_LIMITS)
    engine = StatevectorEngine(seed=seed)
    mine = engine.run(program)
    theirs = engine.run(reference)
    assert mine.fingerprint == theirs.fingerprint, f"seed {seed}"
    np.testing.assert_array_equal(mine.probabilities, theirs.probabilities)
    assert engine.counts(program, shots=128) == engine.counts(reference, shots=128), (
        f"seed {seed}"
    )


@pytest.mark.parametrize("seed", QASM_SEEDS[25:35])
def test_ingested_program_bit_identical_on_fake_device(seed):
    """Same property through the full noisy pipeline (transpile + schedule +
    noisy simulation), exercising engine_payload's schedule path."""
    text, reference = random_qasm_case(seed)
    program = ingest_qasm(text, limits=FUZZ_LIMITS)
    engine = FakeDeviceEngine("fake_casablanca", seed=seed, shots=64)
    assert engine.run(program).counts == engine.run(reference).counts, f"seed {seed}"


@pytest.mark.parametrize("seed", QASM_SEEDS[35:45])
def test_ingested_program_submit_parity(seed):
    """submit() must unwrap ingested programs identically to run()."""
    text, reference = random_qasm_case(seed)
    program = ingest_qasm(text, limits=FUZZ_LIMITS)
    engine = StatevectorEngine(seed=seed)
    try:
        future = engine.submit(program)
        np.testing.assert_array_equal(
            future.result().probabilities, engine.run(reference).probabilities
        )
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Corrupted programs: typed errors only — never a crash, hang, or wrong answer
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", CORRUPTION_SEEDS)
def test_corrupted_qasm_never_escapes_typed_errors(seed):
    """Any mutation either still parses cleanly (some mutations are benign,
    e.g. a swap inside an expression) or raises a typed IngestError. A bare
    ValueError/KeyError/RecursionError here is a parser bug."""
    text, _ = random_qasm_case(seed)
    kind, corrupted = corrupt_program(text, seed)
    try:
        parse_qasm(corrupted, limits=FUZZ_LIMITS)
    except IngestError as error:
        if isinstance(error, ParseError):
            assert error.line is not None, (
                f"seed {seed} kind {kind}: ParseError without line info"
            )
    except ReproError as error:  # pragma: no cover - would be a taxonomy bug
        pytest.fail(f"seed {seed} kind {kind}: non-ingest ReproError {error!r}")
    except Exception as error:  # pragma: no cover - the bug class we hunt
        pytest.fail(f"seed {seed} kind {kind}: untyped {type(error).__name__}: {error!r}")


@pytest.mark.parametrize("seed", CORRUPTION_SEEDS[:60])
def test_junk_bytes_always_rejected(seed):
    """The junk_bytes mutation injects characters outside the grammar, so it
    must *always* raise — silently accepting it would be a tokenizer hole."""
    text, _ = random_qasm_case(seed)
    _, corrupted = corrupt_program(text, seed, kind="junk_bytes")
    with pytest.raises(IngestError):
        parse_qasm(corrupted, limits=FUZZ_LIMITS)


def test_every_corruption_kind_is_exercised():
    kinds = {corrupt_program(random_qasm_case(s)[0], s)[0] for s in CORRUPTION_SEEDS}
    assert kinds == set(CORRUPTION_KINDS)


# ---------------------------------------------------------------------------
# JSON wire format fuzz
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", JSON_SEEDS)
def test_json_circuit_round_trip(seed):
    document, circuit = random_json_case(seed)
    rebuilt = circuit_from_json(document)
    assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit), f"seed {seed}"


@pytest.mark.parametrize("seed", JSON_SEEDS[:20])
def test_json_schedule_round_trip(seed):
    _, circuit = random_json_case(seed)
    device = get_device("fake_casablanca")
    scheduled = transpile(circuit, device).scheduled
    rebuilt = schedule_from_json(schedule_to_json(scheduled), device=device)
    assert len(rebuilt.timed_instructions) == len(scheduled.timed_instructions)
    for mine, theirs in zip(rebuilt.sorted_instructions(), scheduled.sorted_instructions()):
        assert mine.instruction == theirs.instruction, f"seed {seed}"
        assert mine.start_ns == theirs.start_ns, f"seed {seed}"
        assert mine.duration_ns == theirs.duration_ns, f"seed {seed}"


@pytest.mark.parametrize("seed", JSON_SEEDS)
def test_corrupted_json_never_escapes_typed_errors(seed):
    """Structural mutations of a valid JSON document must produce a typed
    IngestError or parse cleanly — mirrors the QASM corruption property."""
    text, _ = random_json_case(seed)
    _, corrupted = corrupt_program(text, seed)
    try:
        circuit_from_json(corrupted)
    except IngestError:
        pass
    except Exception as error:  # pragma: no cover - the bug class we hunt
        pytest.fail(f"seed {seed}: untyped {type(error).__name__}: {error!r}")


@pytest.mark.parametrize("seed", JSON_SEEDS[:20])
def test_json_field_mutations_rejected(seed):
    """Surgical field-level corruption (wrong types, out-of-range indices,
    unknown fields) must fail with a ValidationError naming the path."""
    import random as _random

    rng = _random.Random(seed)
    document = json.loads(random_json_case(seed)[0])
    mutation = rng.choice(["version", "qubit", "gate", "field", "params"])
    if mutation == "version":
        document["version"] = 99
    elif mutation == "qubit" and document["instructions"]:
        document["instructions"][0]["qubits"] = [document["num_qubits"] + 7]
    elif mutation == "gate" and document["instructions"]:
        document["instructions"][0]["gate"] = "not_a_gate"
    elif mutation == "params" and document["instructions"]:
        document["instructions"][0]["params"] = ["NaN-ish"]
    else:
        document["surprise"] = {"nested": True}
    with pytest.raises(IngestError):
        circuit_from_json(document)


# ---------------------------------------------------------------------------
# Generator self-checks (keep the harness honest)
# ---------------------------------------------------------------------------

def test_generator_is_deterministic():
    for seed in QASM_SEEDS[:5]:
        text_a, circuit_a = random_qasm_case(seed)
        text_b, circuit_b = random_qasm_case(seed)
        assert text_a == text_b
        assert circuit_fingerprint(circuit_a) == circuit_fingerprint(circuit_b)
        assert corrupt_program(text_a, seed) == corrupt_program(text_b, seed)


def test_generator_covers_language_features():
    """Across the seed set, generated programs must collectively use macros,
    expressions, broadcasts, barriers, delays, and decomposed gates — so the
    round-trip property actually exercises the whole grammar."""
    joined = "\n".join(random_qasm_case(seed)[0] for seed in QASM_SEEDS)
    for feature in ("gate ", "pi", "barrier", "delay(", "measure"):
        assert feature in joined, f"generator never emits {feature!r}"
    assert any(
        gate in joined for gate in ("ccx", "cswap", "cu3", "crx", "ch ")
    ), "generator never emits a decomposed gate"
