"""Tests for expectation estimation and the VQE driver."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, efficient_su2
from repro.exceptions import VQEError
from repro.mitigation import MeasurementMitigator
from repro.operators import PauliSum, h2_hamiltonian, tfim_hamiltonian
from repro.optimizers import SPSA, COBYLA
from repro.simulators import NoiseModel, StatevectorSimulator
from repro.transpiler import transpile
from repro.vqe import (
    VQE,
    ExpectationEstimator,
    application_names,
    build_applications,
    get_application,
    ideal_expectation,
)


@pytest.fixture
def measured_bell(device):
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.measure_all()
    return transpile(circuit, device)


class TestExpectationEstimator:
    def test_ideal_noise_matches_statevector(self, device, ideal_noise, measured_bell):
        ham = PauliSum({"ZZ": 1.0, "XX": 0.5, "ZI": -0.3})
        estimator = ExpectationEstimator(ideal_noise)
        value = estimator.estimate(measured_bell.scheduled, ham).value
        bell = QuantumCircuit(2)
        bell.h(0)
        bell.cx(0, 1)
        assert value == pytest.approx(StatevectorSimulator().expectation(bell, ham), abs=1e-9)

    def test_identity_term_added(self, device, ideal_noise, measured_bell):
        ham = PauliSum({"II": -2.5, "ZZ": 1.0})
        value = ExpectationEstimator(ideal_noise).estimate(measured_bell.scheduled, ham).value
        assert value == pytest.approx(-1.5, abs=1e-9)

    def test_y_basis_rotation(self, device, ideal_noise):
        """<Y> of the state (|0> + i|1>)/sqrt(2) is +1."""
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.s(0)
        circuit.measure(0, 0)
        compiled = transpile(circuit, device)
        value = ExpectationEstimator(ideal_noise).estimate(compiled.scheduled, PauliSum({"Y": 1.0})).value
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_group_values_sum_to_total(self, device, device_noise, measured_bell, tfim4):
        ham = tfim_hamiltonian(2)
        result = ExpectationEstimator(device_noise).estimate(measured_bell.scheduled, ham)
        assert result.value == pytest.approx(sum(result.group_values) + ham.identity_coefficient())

    def test_noise_raises_energy_above_ideal(self, device, device_noise, scheduled_su2_4q, tfim4):
        noisy = ExpectationEstimator(device_noise).estimate(scheduled_su2_4q.scheduled, tfim4).value
        assert noisy >= tfim4.ground_energy() - 1e-6

    def test_shots_add_statistical_noise_but_agree_on_average(self, device, ideal_noise, measured_bell):
        ham = PauliSum({"ZZ": 1.0})
        exact = ExpectationEstimator(ideal_noise).estimate(measured_bell.scheduled, ham).value
        sampled = ExpectationEstimator(ideal_noise, shots=4096, seed=5).estimate(
            measured_bell.scheduled, ham
        ).value
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_mem_corrects_readout_error(self, device, measured_bell):
        readout_only = NoiseModel(
            device,
            include_coherent_errors=False,
            include_crosstalk=False,
            include_gate_error=False,
            include_relaxation=False,
            include_readout_error=True,
        )
        ham = PauliSum({"ZZ": 1.0})
        raw = ExpectationEstimator(readout_only).estimate(measured_bell.scheduled, ham).value
        ordered = [pos for pos, _ in sorted(measured_bell.scheduled.measured_positions(), key=lambda p: p[1])]
        mitigator = MeasurementMitigator.from_device(
            device, [measured_bell.scheduled.physical_qubit(p) for p in ordered]
        )
        mitigated = ExpectationEstimator(readout_only, mitigator=mitigator).estimate(
            measured_bell.scheduled, ham
        ).value
        assert abs(mitigated - 1.0) < abs(raw - 1.0)
        assert mitigated == pytest.approx(1.0, abs=1e-6)

    def test_unmeasured_hamiltonian_qubit_rejected(self, device, ideal_noise):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.measure(0, 0)
        compiled = transpile(circuit, device)
        with pytest.raises(VQEError):
            ExpectationEstimator(ideal_noise).estimate(compiled.scheduled, PauliSum({"ZZ": 1.0}))

    def test_ideal_expectation_helper(self, bound_su2_4q, tfim4):
        assert ideal_expectation(bound_su2_4q, tfim4) == pytest.approx(
            StatevectorSimulator().expectation(bound_su2_4q, tfim4)
        )


class TestVQE:
    def test_width_mismatch(self):
        with pytest.raises(VQEError):
            VQE(efficient_su2(4, reps=1), tfim_hamiltonian(6))

    def test_ideal_run_improves_over_initial_point(self):
        ansatz = efficient_su2(4, reps=2, entanglement="circular")
        vqe = VQE(ansatz, tfim_hamiltonian(4), SPSA(maxiter=60, seed=2), seed=2)
        initial_value = vqe.ideal_objective(vqe.initial_point())
        result = vqe.run_ideal()
        assert result.optimal_value < initial_value
        assert result.execution_mode == "ideal"
        assert result.num_evaluations > 60

    def test_ideal_run_respects_variational_bound(self):
        ansatz = efficient_su2(4, reps=2, entanglement="circular")
        ham = tfim_hamiltonian(4)
        result = VQE(ansatz, ham, COBYLA(maxiter=150), seed=3).run_ideal()
        assert result.optimal_value >= ham.ground_energy() - 1e-9

    def test_h2_vqe_reaches_chemical_vicinity(self):
        """The UCCSD-style ansatz recovers most of the H2 correlation energy."""
        from repro.circuits import uccsd_like_ansatz

        ham = h2_hamiltonian()
        vqe = VQE(uccsd_like_ansatz(), ham, COBYLA(maxiter=200), seed=1)
        result = vqe.run_ideal(initial_point=[0.0, 0.0, 0.0])
        assert result.optimal_value == pytest.approx(ham.ground_energy(), abs=0.01)

    def test_initial_point_reproducible(self):
        ansatz = efficient_su2(4, reps=1)
        vqe = VQE(ansatz, tfim_hamiltonian(4), seed=9)
        assert np.allclose(vqe.initial_point(), vqe.initial_point())

    def test_evaluate_trajectory_ideal(self):
        # Non-blocking SPSA reports the final probe mean — an O(c_k) proxy
        # for f(optimal_parameters), not a re-measurement (the hidden third
        # evaluation it used to spend; docs/algorithms.md) — so the exact
        # replay agrees only loosely.
        ansatz = efficient_su2(4, reps=1, entanglement="circular")
        vqe = VQE(ansatz, tfim_hamiltonian(4), SPSA(maxiter=5, seed=1), seed=1)
        result = vqe.run_ideal()
        trajectory = vqe.evaluate_trajectory_ideal([result.optimal_parameters])
        assert trajectory[0] == pytest.approx(result.optimal_value, abs=0.5)
        # With blocking the reported value *is* the accepted candidate's
        # measurement, so the replay matches exactly.
        blocked_vqe = VQE(
            ansatz, tfim_hamiltonian(4), SPSA(maxiter=5, seed=1, blocking=True), seed=1
        )
        blocked = blocked_vqe.run_ideal()
        replay = blocked_vqe.evaluate_trajectory_ideal([blocked.optimal_parameters])
        assert replay[0] == pytest.approx(blocked.optimal_value, abs=1e-12)

    def test_noisy_objective_factory(self, device):
        ansatz = efficient_su2(2, reps=1, entanglement="linear")
        vqe = VQE(ansatz, tfim_hamiltonian(2), seed=4)
        objective = vqe.noisy_objective_factory(device)
        value = objective(vqe.initial_point())
        assert value >= tfim_hamiltonian(2).ground_energy() - 1e-6


class TestApplications:
    def test_seven_applications(self):
        apps = build_applications()
        assert len(apps) == 7
        assert application_names()[0] == "HW_TFIM_6q_f_2r"

    def test_lookup_case_insensitive(self):
        assert get_application("uccsd_h2").name == "UCCSD_H2"

    def test_unknown_application(self):
        with pytest.raises(VQEError):
            get_application("does_not_exist")

    def test_ansatz_and_hamiltonian_widths_agree(self):
        for app in build_applications():
            assert app.ansatz.num_qubits == app.hamiltonian.num_qubits

    def test_runtime_flags(self):
        apps = {a.name: a for a in build_applications()}
        assert apps["HW_Li+"].uses_runtime and apps["UCCSD_H2"].uses_runtime
        assert not apps["HW_TFIM_6q_f_2r"].uses_runtime

    def test_devices_are_large_enough(self):
        for app in build_applications():
            assert app.device().num_qubits >= app.num_qubits

    def test_exact_ground_energy_negative(self):
        for app in build_applications():
            assert app.exact_ground_energy() < 0
