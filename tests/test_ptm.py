"""Property tests for the Pauli-transfer-matrix backend (:mod:`repro.simulators.ptm`).

The PTM picture rests on a handful of algebraic invariants, each pinned here:

* every noise channel in :mod:`repro.simulators.channels` compiles to a
  *trace-preserving* PTM — first row ``(1, 0, ..., 0)`` — across the full
  parameter ranges (hypothesis-driven);
* unitary gates compile to *orthogonal* PTMs;
* the PTM action on a Pauli vector equals the Kraus action on the density
  matrix, through the exact basis change;
* a fused run's composed kernel equals the product of its member PTMs, and
  the stride-grid fusion rule makes segmented evolution bit-identical to a
  single pass (the engine's resume contract);
* batched states evolve and measure bit-identically to their rows evolved
  one at a time (what lets the engine stack measurement work);
* the rebuilt :func:`~repro.simulators.channels.compose_channels` is exact in
  superoperator space and keeps the operator count bounded by ``d**2`` under
  repeated composition.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import randomized
from repro.circuits.gates import Gate
from repro.exceptions import SimulationError
from repro.operators import tfim_hamiltonian
from repro.simulators import (
    DensityMatrix,
    NoiseModel,
    PauliVectorState,
    PTMEvolver,
    compose_channels,
    is_valid_channel,
    kraus_from_superop,
    kraus_to_ptm,
    pauli_basis,
    superop_from_kraus,
    unitary_to_ptm,
)
from repro.simulators.channels import (
    amplitude_damping_kraus,
    bit_flip_kraus,
    coherent_z_kraus,
    coherent_zz_kraus,
    depolarizing_kraus,
    identity_kraus,
    phase_damping_kraus,
    thermal_relaxation_kraus,
)
from repro.simulators.ptm import (
    PTMCursor,
    channel_ptm,
    dense_contraction_count,
    sim_op_ptm,
    unitary_ptm,
)

ATOL = 1e-12

#: Every Kraus factory the channels module exports, at representative
#: parameters (the hypothesis tests below sweep the parameter ranges).
CHANNEL_CASES = [
    ("identity", identity_kraus()),
    ("identity_2q", identity_kraus(2)),
    ("amplitude_damping", amplitude_damping_kraus(0.13)),
    ("phase_damping", phase_damping_kraus(0.21)),
    ("thermal_relaxation", thermal_relaxation_kraus(120.0, 80_000.0, 95_000.0)),
    ("depolarizing_1q", depolarizing_kraus(0.004)),
    ("depolarizing_2q", depolarizing_kraus(0.02, num_qubits=2)),
    ("coherent_z", coherent_z_kraus(0.37)),
    ("coherent_zz", coherent_zz_kraus(0.11)),
    ("bit_flip", bit_flip_kraus(0.08)),
]

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def random_density_matrix(seed: int, num_qubits: int = 2) -> DensityMatrix:
    """A full-rank random mixed state (Hermitian, trace one, PSD)."""
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = raw @ raw.conj().T
    return DensityMatrix(num_qubits, data=rho / np.trace(rho))


def assert_trace_preserving(ptm: np.ndarray) -> None:
    expected = np.zeros(ptm.shape[1])
    expected[0] = 1.0
    np.testing.assert_allclose(ptm[0], expected, atol=ATOL)


class TestPtmCompilation:
    @pytest.mark.parametrize("name,kraus", CHANNEL_CASES, ids=[c[0] for c in CHANNEL_CASES])
    def test_every_channel_compiles_trace_preserving(self, name, kraus):
        ptm = kraus_to_ptm(kraus)
        dim = kraus[0].shape[0]
        assert ptm.shape == (dim ** 2, dim ** 2)
        assert ptm.dtype == np.float64
        assert_trace_preserving(ptm)

    @settings(max_examples=25, deadline=None)
    @given(gamma=unit)
    def test_amplitude_damping_sweep(self, gamma):
        assert_trace_preserving(kraus_to_ptm(amplitude_damping_kraus(gamma)))

    @settings(max_examples=25, deadline=None)
    @given(lam=unit)
    def test_phase_damping_sweep(self, lam):
        assert_trace_preserving(kraus_to_ptm(phase_damping_kraus(lam)))

    @settings(max_examples=25, deadline=None)
    @given(probability=unit)
    def test_bit_flip_sweep(self, probability):
        assert_trace_preserving(kraus_to_ptm(bit_flip_kraus(probability)))

    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=0.999, allow_nan=False))
    def test_depolarizing_sweep(self, rate):
        assert_trace_preserving(kraus_to_ptm(depolarizing_kraus(rate)))

    @settings(max_examples=25, deadline=None)
    @given(
        duration=st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
        t1=st.floats(min_value=1_000.0, max_value=200_000.0, allow_nan=False),
        ratio=st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
    )
    def test_thermal_relaxation_sweep(self, duration, t1, ratio):
        # Physical T2 <= 2 T1; the ratio strategy keeps the pair in range.
        kraus = thermal_relaxation_kraus(duration, t1, ratio * t1)
        assert_trace_preserving(kraus_to_ptm(kraus))

    @pytest.mark.parametrize(
        "gate",
        [
            Gate("h", 1),
            Gate("x", 1),
            Gate("y", 1),
            Gate("z", 1),
            Gate("s", 1),
            Gate("sx", 1),
            Gate("t", 1),
            Gate("rx", 1, (0.3,)),
            Gate("ry", 1, (-1.1,)),
            Gate("rz", 1, (2.7,)),
            Gate("cx", 2),
            Gate("cz", 2),
        ],
        ids=lambda g: g.name,
    )
    def test_unitary_ptms_are_orthogonal(self, gate):
        ptm = unitary_to_ptm(gate.matrix())
        np.testing.assert_allclose(ptm @ ptm.T, np.eye(ptm.shape[0]), atol=ATOL)
        assert_trace_preserving(ptm)

    def test_ptm_action_matches_kraus_action(self):
        for seed, kraus in enumerate([c[1] for c in CHANNEL_CASES if c[1][0].shape[0] == 2]):
            rho = random_density_matrix(40 + seed, num_qubits=2)
            dense = rho.copy()
            dense.apply_kraus(kraus, [1])
            vector = PauliVectorState.from_density_matrix(rho)
            vector.apply_ptm(kraus_to_ptm(kraus), (1,))
            np.testing.assert_allclose(
                vector.to_density_matrix().data, dense.data, atol=ATOL
            )

    def test_content_lru_shares_identical_matrices(self):
        h = Gate("h", 1).matrix()
        assert unitary_ptm(h) is unitary_ptm(h.copy())
        # The cached array is frozen: kernels must never mutate it.
        assert not unitary_ptm(h).flags.writeable

    def test_pauli_basis_validates(self):
        with pytest.raises(SimulationError):
            pauli_basis(0)


class TestComposeChannels:
    def test_composition_is_exact_in_superop_space(self):
        first = amplitude_damping_kraus(0.2)
        second = phase_damping_kraus(0.35)
        composed = compose_channels(first, second)
        np.testing.assert_allclose(
            superop_from_kraus(composed),
            superop_from_kraus(second) @ superop_from_kraus(first),
            atol=ATOL,
        )
        assert is_valid_channel(composed)

    def test_amplitude_damping_composes_analytically(self):
        # Two damping steps combine as gamma = 1 - (1-a)(1-b).
        composed = compose_channels(amplitude_damping_kraus(0.1), amplitude_damping_kraus(0.3))
        expected = amplitude_damping_kraus(1.0 - 0.9 * 0.7)
        np.testing.assert_allclose(
            superop_from_kraus(composed), superop_from_kraus(expected), atol=ATOL
        )

    def test_operator_count_stays_bounded(self):
        """Repeated composition must not multiply operator counts (the bug the
        superop-space rebuild fixes): d**2 is the ceiling, always."""
        kraus = identity_kraus()
        reference = np.eye(4)
        for step in range(12):
            kraus = compose_channels(kraus, depolarizing_kraus(0.01))
            kraus = compose_channels(kraus, amplitude_damping_kraus(0.05))
            assert len(kraus) <= 4, f"step {step}: {len(kraus)} operators"
            reference = (
                superop_from_kraus(depolarizing_kraus(0.01)) @ reference
            )
            reference = superop_from_kraus(amplitude_damping_kraus(0.05)) @ reference
        np.testing.assert_allclose(superop_from_kraus(kraus), reference, atol=1e-10)
        assert is_valid_channel(kraus)

    def test_superop_kraus_round_trip(self):
        for _, kraus in CHANNEL_CASES:
            superop = superop_from_kraus(kraus)
            rebuilt = kraus_from_superop(superop)
            assert len(rebuilt) <= kraus[0].shape[0] ** 2
            np.testing.assert_allclose(superop_from_kraus(rebuilt), superop, atol=ATOL)

    def test_thermal_relaxation_uses_bounded_composition(self):
        kraus = thermal_relaxation_kraus(250.0, 60_000.0, 40_000.0)
        assert len(kraus) <= 4
        assert is_valid_channel(kraus)


class TestPauliVectorState:
    def test_initial_state_is_all_zeros(self):
        state = PauliVectorState(3)
        np.testing.assert_allclose(state.probabilities()[0], 1.0, atol=ATOL)
        assert state.trace() == pytest.approx(1.0)
        assert state.purity() == pytest.approx(1.0)
        np.testing.assert_allclose(
            state.to_density_matrix().data, DensityMatrix(3).data, atol=ATOL
        )

    def test_density_matrix_round_trip(self):
        for seed in range(5):
            rho = random_density_matrix(seed, num_qubits=3)
            back = PauliVectorState.from_density_matrix(rho).to_density_matrix()
            np.testing.assert_allclose(back.data, rho.data, atol=ATOL)

    def test_probabilities_match_dense(self):
        for seed in range(5):
            rho = random_density_matrix(seed, num_qubits=3)
            vector = PauliVectorState.from_density_matrix(rho)
            np.testing.assert_allclose(
                vector.probabilities(), rho.probabilities(), atol=ATOL
            )

    def test_marginals_match_dense_in_any_order(self):
        rho = random_density_matrix(9, num_qubits=3)
        vector = PauliVectorState.from_density_matrix(rho)
        for qubits in [(0,), (2,), (0, 2), (2, 0), (1, 0, 2)]:
            np.testing.assert_allclose(
                vector.marginal_probabilities(qubits),
                rho.marginal_probabilities(list(qubits)),
                atol=ATOL,
            )

    def test_expectation_matches_dense_trace(self):
        observable = tfim_hamiltonian(3)
        basis = pauli_basis(3)
        for seed in range(4):
            rho = random_density_matrix(20 + seed, num_qubits=3)
            vector = PauliVectorState.from_density_matrix(rho)
            matrix = observable.identity_coefficient() * np.eye(8, dtype=complex)
            for pauli, coeff in observable.non_identity_terms():
                index = sum(
                    {"I": 0, "X": 1, "Y": 2, "Z": 3}[letter] * 4 ** (2 - q)
                    for q, letter in enumerate(pauli.label)
                )
                matrix = matrix + coeff * basis[index]
            expected = float(np.real(np.trace(matrix @ rho.data)))
            assert vector.expectation(observable)[0] == pytest.approx(expected, abs=ATOL)

    def test_batched_evolution_is_bitwise_single_row(self):
        """The batch axis is elementwise: stacked rows evolve and measure
        exactly as they would alone — the fast-path's core assumption."""
        rng = np.random.default_rng(5)
        singles = []
        for seed in range(6):
            rho = random_density_matrix(60 + seed, num_qubits=3)
            singles.append(PauliVectorState.from_density_matrix(rho))
        stacked = PauliVectorState.stack(singles)
        assert stacked.batch == 6
        ops = [
            (unitary_ptm(Gate("h", 1).matrix()), (1,)),
            (kraus_to_ptm(amplitude_damping_kraus(0.12)), (0,)),
            (unitary_ptm(Gate("cx", 2).matrix()), (2, 0)),
            (kraus_to_ptm(depolarizing_kraus(0.01, num_qubits=2)), (1, 2)),
        ]
        for ptm, positions in ops:
            stacked.apply_ptm(ptm, positions)
            for single in singles:
                single.apply_ptm(ptm, positions)
        for index, single in enumerate(singles):
            assert np.array_equal(stacked.data[index], single.data[0]), index
        batch_probs = stacked.batch_probabilities()
        batch_marginals = stacked.batch_marginal_probabilities((2, 0))
        for index, single in enumerate(singles):
            assert np.array_equal(batch_probs[index], single.probabilities())
            assert np.array_equal(
                batch_marginals[index], single.marginal_probabilities((2, 0))
            )

    def test_stack_and_row_round_trip(self):
        singles = [PauliVectorState(2) for _ in range(3)]
        singles[1].apply_unitary(Gate("h", 1).matrix(), (0,))
        stacked = PauliVectorState.stack(singles)
        for index in range(3):
            assert np.array_equal(stacked.row(index).data, singles[index].data)

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            PauliVectorState(2, data=np.zeros(5))
        with pytest.raises(SimulationError):
            PauliVectorState(0)
        with pytest.raises(SimulationError):
            PauliVectorState(2).apply_ptm(np.eye(4), (0, 0))
        with pytest.raises(SimulationError):
            PauliVectorState(2, batch=2).trace()


class TestFusionSemantics:
    @pytest.fixture(scope="class")
    def device(self):
        return randomized.fuzz_device()

    @pytest.fixture(scope="class")
    def noise(self, device):
        return NoiseModel.from_device(device)

    def test_fused_kernel_equals_member_product(self):
        """Composing PTMs then applying once equals applying one by one."""
        members = [
            unitary_ptm(Gate("rx", 1, (0.4,)).matrix()),
            kraus_to_ptm(phase_damping_kraus(0.2)),
            unitary_ptm(Gate("h", 1).matrix()),
        ]
        composed = members[2] @ (members[1] @ members[0])
        fused = PauliVectorState.from_density_matrix(random_density_matrix(3, 2))
        stepped = fused.copy()
        fused.apply_ptm(composed, (1,))
        for member in members:
            stepped.apply_ptm(member, (1,))
        np.testing.assert_allclose(fused.data, stepped.data, atol=ATOL)

    def test_evolver_matches_unfused_application(self, device, noise):
        """The fused walk equals applying every op's PTM individually."""
        evolver = PTMEvolver(noise)
        for seed in randomized.fuzz_seeds(4, offset=900):
            scheduled = randomized.random_schedule(seed, device=device)
            fused = evolver.run(scheduled)
            context = evolver.prepare(scheduled)
            unfused = PauliVectorState(scheduled.num_qubits)
            last_time = dict(context.initial_last_time)
            for op in evolver._simulator.schedule_ops(
                scheduled, context, last_time, 0, len(context.ordered)
            ):
                unfused.apply_ptm(sim_op_ptm(op), op.positions)
            np.testing.assert_allclose(fused.data, unfused.data, atol=ATOL)

    def test_segmented_advance_is_bitwise_on_stride_grid(self, device, noise):
        """Stopping and resuming at stride multiples replays the identical
        composed-kernel sequence — the warm-resume determinism contract."""
        evolver = PTMEvolver(noise)
        for seed in randomized.fuzz_seeds(4, offset=950):
            scheduled = randomized.random_schedule(seed, device=device)
            context = evolver.prepare(scheduled)
            total = len(context.ordered)
            one_shot = evolver.begin(scheduled, context)
            evolver.advance(scheduled, one_shot, context)
            segmented = evolver.begin(scheduled, context)
            stops = list(range(evolver.fusion_stride, total, evolver.fusion_stride))
            for stop in stops + [total]:
                evolver.advance(scheduled, segmented, context, stop_index=stop)
            assert np.array_equal(one_shot.state.data, segmented.state.data), seed
            # Fusion never crosses the stride grid, so the kernel counters are
            # segmentation-independent too.
            assert segmented.matmuls == one_shot.matmuls
            assert segmented.fused == one_shot.fused

    def test_cursor_copy_resets_counters(self, device, noise):
        evolver = PTMEvolver(noise)
        scheduled = randomized.random_schedule(31, device=device)
        cursor = evolver.begin(scheduled)
        evolver.advance(scheduled, cursor, stop_index=evolver.fusion_stride)
        assert cursor.matmuls > 0
        snapshot = cursor.copy()
        assert snapshot.matmuls == 0 and snapshot.fused == 0
        assert np.array_equal(snapshot.state.data, cursor.state.data)

    def test_fusion_beats_dense_contraction_count(self, device, noise):
        """The acceptance criterion: fewer fused kernels than dense-path
        contractions on every fuzz schedule."""
        evolver = PTMEvolver(noise)
        for seed in randomized.fuzz_seeds(4, offset=980):
            scheduled = randomized.random_schedule(seed, device=device)
            cursor = evolver.begin(scheduled)
            evolver.advance(scheduled, cursor)
            dense_count = dense_contraction_count(noise, scheduled)
            assert cursor.matmuls < dense_count, (
                f"seed {seed}: {cursor.matmuls} kernels vs {dense_count} contractions"
            )
            assert cursor.fused > 0
