"""Tests for result analysis and the runtime/cloud models."""

import numpy as np
import pytest

from repro.analysis import (
    ApplicationResult,
    EvaluationSummary,
    StrategyOutcome,
    fraction_of_optimal,
    improvement_over_baseline,
)
from repro.exceptions import ReproError, RuntimeSessionError
from repro.optimizers import COBYLA, SPSA
from repro.runtime import (
    CircuitTimingModel,
    ExecutionTimeModel,
    QueueModel,
    RuntimeConstraints,
    RuntimeSession,
)


class TestAnalysisMetrics:
    def test_fraction_of_optimal(self):
        assert fraction_of_optimal(-2.5, -5.0) == pytest.approx(0.5)
        assert fraction_of_optimal(-5.0, -5.0) == pytest.approx(1.0)

    def test_fraction_clipped_for_wrong_sign(self):
        assert fraction_of_optimal(0.3, -5.0) == pytest.approx(1e-3)

    def test_fraction_requires_negative_optimum(self):
        with pytest.raises(ReproError):
            fraction_of_optimal(-1.0, 2.0)

    def test_improvement_over_baseline(self):
        assert improvement_over_baseline(-3.0, -1.5, -5.0) == pytest.approx(2.0)
        assert improvement_over_baseline(-1.5, -1.5, -5.0) == pytest.approx(1.0)

    def test_improvement_degrades_gracefully_for_positive_energy(self):
        value = improvement_over_baseline(-1.0, 0.2, -5.0)
        assert value > 1.0


class TestApplicationResult:
    def _result(self):
        result = ApplicationResult(application="demo", optimal_energy=-4.0)
        result.add(StrategyOutcome("mem", -1.0))
        result.add(StrategyOutcome("vaqem_gs_xy", -3.0))
        return result

    def test_energy_lookup(self):
        result = self._result()
        assert result.energy("mem") == -1.0
        with pytest.raises(ReproError):
            result.energy("zne")

    def test_fraction_and_improvement(self):
        result = self._result()
        assert result.fraction_of_optimal("vaqem_gs_xy") == pytest.approx(0.75)
        assert result.improvement("vaqem_gs_xy") == pytest.approx(3.0)

    def test_strategies_sorted(self):
        assert self._result().strategies() == ["mem", "vaqem_gs_xy"]


class TestEvaluationSummary:
    def _summary(self):
        summary = EvaluationSummary()
        for name, mem, vaqem in [("a", -1.0, -2.0), ("b", -1.0, -3.0)]:
            result = ApplicationResult(application=name, optimal_energy=-4.0)
            result.add(StrategyOutcome("mem", mem))
            result.add(StrategyOutcome("vaqem_gs_xy", vaqem))
            summary.add(result)
        return summary

    def test_geomean_improvement(self):
        summary = self._summary()
        assert summary.geomean_improvement("vaqem_gs_xy") == pytest.approx(np.sqrt(2.0 * 3.0))

    def test_improvements_per_application(self):
        improvements = self._summary().improvements("vaqem_gs_xy")
        assert improvements == {"a": pytest.approx(2.0), "b": pytest.approx(3.0)}

    def test_fractions_of_optimal(self):
        fractions = self._summary().fractions_of_optimal("mem")
        assert fractions["a"] == pytest.approx(0.25)

    def test_table_contains_geomean_row(self):
        table = self._summary().table(["vaqem_gs_xy"])
        assert "GeoMean" in table and "2.45" in table


class TestRuntimeSession:
    def test_spsa_is_allowed_and_others_rejected(self):
        constraints = RuntimeConstraints()
        constraints.check_optimizer(SPSA(maxiter=5))
        with pytest.raises(RuntimeSessionError):
            constraints.check_optimizer(COBYLA())

    def test_session_charges_time(self):
        session = RuntimeSession(lambda params: 0.0, timing=CircuitTimingModel(shots=1024))
        session.evaluate(np.zeros(2))
        assert session.num_evaluations == 1
        assert session.elapsed_seconds > 0

    def test_session_enforces_five_hour_cap(self):
        timing = CircuitTimingModel(shots=4096, per_job_overhead_s=3600.0)
        session = RuntimeSession(lambda params: 0.0, timing=timing)
        with pytest.raises(RuntimeSessionError):
            for _ in range(10):
                session.evaluate(np.zeros(1))

    def test_run_program_with_spsa(self):
        session = RuntimeSession(lambda params: float(np.sum(params ** 2)))
        result = session.run_program(SPSA(maxiter=10, seed=0), [1.0])
        assert session.num_evaluations == result.num_evaluations
        assert session.history

    def test_run_program_rejects_non_spsa(self):
        session = RuntimeSession(lambda params: 0.0)
        with pytest.raises(RuntimeSessionError):
            session.run_program(COBYLA(), [0.0])

    def test_max_evaluations_within_cap(self):
        session = RuntimeSession(lambda params: 0.0)
        assert session.max_evaluations_within_cap() > 0


class TestQueueModel:
    def test_deterministic_samples(self):
        model = QueueModel(seed=1)
        assert model.sample_wait_minutes("fake_jakarta", 0) == model.sample_wait_minutes("fake_jakarta", 0)

    def test_accepts_paper_device_names(self):
        model = QueueModel(seed=1)
        assert model.sample_wait_minutes("ibmq_montreal", 0) > 0

    def test_unknown_device(self):
        with pytest.raises(ReproError):
            QueueModel().profile("fake_unknown")

    def test_runtime_machine_queues_longest_on_average(self):
        model = QueueModel(seed=2)
        assert model.expected_wait_minutes("fake_montreal") > model.expected_wait_minutes("fake_jakarta")

    def test_average_wait_requires_jobs(self):
        with pytest.raises(ReproError):
            QueueModel().average_wait_minutes("fake_jakarta", 0)


class TestExecutionTimeModel:
    def test_breakdown_components(self):
        model = ExecutionTimeModel()
        breakdown = model.breakdown(
            application="HW_TFIM_6q_c_4r",
            device_name="fake_casablanca",
            uses_runtime=False,
            angle_tuning_evaluations=600,
            em_tuning_evaluations=200,
        )
        assert breakdown.angle_tuning_simulation_min > 0
        assert breakdown.angle_tuning_runtime_min == 0.0
        assert breakdown.em_tuning_min > 0
        assert breakdown.queueing_min > 0
        assert breakdown.total_min == pytest.approx(
            sum(breakdown.as_dict().values())
        )

    def test_runtime_application_uses_runtime_component(self):
        model = ExecutionTimeModel()
        breakdown = model.breakdown(
            application="UCCSD_H2",
            device_name="fake_montreal",
            uses_runtime=True,
            angle_tuning_evaluations=300,
            em_tuning_evaluations=100,
        )
        assert breakdown.angle_tuning_runtime_min > 0
        assert breakdown.angle_tuning_simulation_min == 0.0

    def test_simulation_is_faster_than_runtime(self):
        model = ExecutionTimeModel()
        assert model.angle_tuning_simulation_minutes(500) < model.angle_tuning_runtime_minutes(500)

    def test_queueing_dwarfs_tuning(self):
        """The paper's observation: queue waits exceed the actual tuning time."""
        model = ExecutionTimeModel()
        breakdown = model.breakdown(
            application="HW_TFIM_4q_c_6r",
            device_name="fake_guadalupe",
            uses_runtime=False,
            angle_tuning_evaluations=600,
            em_tuning_evaluations=150,
        )
        assert breakdown.queueing_min > breakdown.angle_tuning_simulation_min + breakdown.em_tuning_min
