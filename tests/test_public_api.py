"""Sanity checks on the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing public symbol {name}"

    def test_key_entry_points_importable(self):
        assert callable(repro.get_application)
        assert callable(repro.transpile)
        assert callable(repro.tfim_hamiltonian)
        assert repro.VAQEMPipeline is not None
        assert repro.STANDARD_STRATEGIES[0] == "no_em"

    def test_exception_hierarchy(self):
        assert issubclass(repro.CircuitError, repro.ReproError)
        assert issubclass(repro.VAQEMError, repro.ReproError)
        assert issubclass(repro.TranspilerError, repro.ReproError)
        assert issubclass(repro.RuntimeSessionError, repro.ReproError)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.circuits", "repro.operators", "repro.backends", "repro.simulators",
            "repro.transpiler", "repro.mitigation", "repro.optimizers", "repro.vqe",
            "repro.vaqem", "repro.runtime", "repro.metrics", "repro.analysis",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        imported = importlib.import_module(module)
        assert imported.__name__ == module

    def test_quickstart_objects_compose(self):
        """The README quickstart objects can be constructed without side effects."""
        application = repro.get_application("UCCSD_H2")
        config = repro.VAQEMConfig(budget=repro.TuningBudget(max_windows=2))
        pipeline = repro.VAQEMPipeline(application, config)
        assert pipeline.device.num_qubits == 27
        assert pipeline.config.describe().startswith("VAQEM:")
