"""Tests for the classical optimizers."""

import numpy as np
import pytest

from repro.exceptions import OptimizerError
from repro.optimizers import COBYLA, NelderMead, SPSA, ScipyOptimizer, TrackingObjective


def quadratic(x):
    return float(np.sum((np.asarray(x) - 1.5) ** 2))


def noisy_quadratic_factory(scale, seed=0):
    rng = np.random.default_rng(seed)

    def objective(x):
        return quadratic(x) + float(rng.normal(0, scale))

    return objective


class BatchQuadratic:
    """A BatchObjective-protocol quadratic that counts batch submissions."""

    def __init__(self):
        self.batch_calls = 0
        self.batch_sizes = []

    def __call__(self, parameters):
        return quadratic(parameters)

    def evaluate_batch(self, points):
        self.batch_calls += 1
        self.batch_sizes.append(len(points))
        return [quadratic(p) for p in points]


class TestTrackingObjective:
    def test_records_every_evaluation(self):
        tracked = TrackingObjective(quadratic)
        tracked(np.array([0.0]))
        tracked(np.array([1.0]))
        assert tracked.num_evaluations == 2
        assert len(tracked.points) == 2

    def test_best_returns_minimum_seen(self):
        tracked = TrackingObjective(quadratic)
        tracked(np.array([0.0]))
        tracked(np.array([1.4]))
        tracked(np.array([3.0]))
        point, value = tracked.best()
        assert point == pytest.approx([1.4])
        assert value == pytest.approx(quadratic([1.4]))

    def test_best_without_evaluations(self):
        with pytest.raises(OptimizerError):
            TrackingObjective(quadratic).best()

    def test_evaluate_batch_falls_back_to_elementwise(self):
        tracked = TrackingObjective(quadratic)
        values = tracked.evaluate_batch([np.array([0.0]), np.array([1.5])])
        assert values == pytest.approx([quadratic([0.0]), 0.0])
        assert tracked.num_evaluations == 2
        assert len(tracked.points) == 2

    def test_evaluate_batch_uses_batch_objective(self):
        inner = BatchQuadratic()
        tracked = TrackingObjective(inner)
        values = tracked.evaluate_batch([np.array([1.0]), np.array([2.0])])
        assert inner.batch_calls == 1
        assert inner.batch_sizes == [2]
        assert values == pytest.approx([0.25, 0.25])
        assert tracked.num_evaluations == 2


class TestSPSA:
    def test_invalid_configuration(self):
        with pytest.raises(OptimizerError):
            SPSA(maxiter=0)
        with pytest.raises(OptimizerError):
            SPSA(resamplings=0)
        with pytest.raises(OptimizerError):
            SPSA(calibration_evaluations=0)

    def test_converges_on_quadratic(self):
        result = SPSA(maxiter=150, seed=1).minimize(quadratic, [4.0, -2.0])
        assert result.optimal_value < 0.05
        assert np.allclose(result.optimal_parameters, [1.5, 1.5], atol=0.3)

    def test_no_hidden_third_evaluation(self):
        # Regression: Spall's SPSA costs exactly two evaluations per iteration
        # (per resampling) when blocking is off — the candidate point must NOT
        # be evaluated.  An earlier version silently spent 3 evals/iteration.
        for maxiter, resamplings in [(30, 1), (20, 3), (7, 2)]:
            optimizer = SPSA(maxiter=maxiter, seed=2, resamplings=resamplings)
            result = optimizer.minimize(quadratic, [3.0])
            assert result.num_evaluations == 1 + 2 * resamplings * maxiter
            assert len(result.history) == maxiter + 1

    def test_blocking_evaluates_candidate(self):
        # With blocking the candidate must be evaluated to decide acceptance:
        # one extra evaluation per iteration (explicit allowed_increase, so no
        # calibration evaluations).
        result = SPSA(maxiter=25, seed=2, blocking=True, allowed_increase=0.5).minimize(
            quadratic, [3.0]
        )
        assert result.num_evaluations == 1 + 3 * 25

    def test_blocking_noise_calibration_cost(self):
        # Default allowed_increase=None calibrates from extra initial-point
        # evaluations; a deterministic objective calibrates to zero allowance.
        optimizer = SPSA(maxiter=10, seed=2, blocking=True, calibration_evaluations=4)
        result = optimizer.minimize(quadratic, [3.0])
        assert result.num_evaluations == 1 + 4 + 3 * 10
        assert result.metadata["allowed_increase"] == pytest.approx(0.0)

    def test_blocking_noise_calibration_scales_with_noise(self):
        optimizer = SPSA(maxiter=5, seed=2, blocking=True, calibration_evaluations=8)
        result = optimizer.minimize(noisy_quadratic_factory(0.2, seed=9), [3.0])
        allowance = result.metadata["allowed_increase"]
        # 2x the sample stddev of the initial-point evaluations: the noise
        # scale is 0.2, so the allowance lands near 0.4 (loose bounds).
        assert 0.05 < allowance < 1.5

    def test_deterministic_for_fixed_seed(self):
        a = SPSA(maxiter=25, seed=3).minimize(quadratic, [2.0, 2.0])
        b = SPSA(maxiter=25, seed=3).minimize(quadratic, [2.0, 2.0])
        assert np.allclose(a.optimal_parameters, b.optimal_parameters)
        assert a.history == b.history

    def test_batched_objective_identical_to_serial(self):
        # The BatchObjective path must be bit-identical to element-wise
        # evaluation: same trajectory, same history, same result.
        serial = SPSA(maxiter=40, seed=11).minimize(quadratic, [2.5, -1.0])
        batch_objective = BatchQuadratic()
        batched = SPSA(maxiter=40, seed=11).minimize(batch_objective, [2.5, -1.0])
        assert batch_objective.batch_calls == 40  # one submission per iteration
        assert batch_objective.batch_sizes == [2] * 40
        assert batched.history == serial.history
        assert np.array_equal(batched.optimal_parameters, serial.optimal_parameters)
        assert batched.optimal_value == serial.optimal_value

    def test_tolerates_noisy_objective(self):
        result = SPSA(maxiter=200, seed=4).minimize(noisy_quadratic_factory(0.05), [4.0])
        assert abs(result.optimal_parameters[0] - 1.5) < 0.5

    def test_returns_last_point_not_noisy_argmin(self):
        # Under shot noise the argmin over recorded values is biased
        # optimistic; SPSA must report the last accepted point instead.
        tracked_values = []

        def noisy(x, rng=np.random.default_rng(21)):
            value = quadratic(x) + float(rng.normal(0, 0.3))
            tracked_values.append(value)
            return value

        result = SPSA(maxiter=60, seed=21).minimize(noisy, [3.0])
        assert result.optimal_value > min(tracked_values)
        # The reported point is the final iterate of the trajectory.
        assert result.optimal_parameters == pytest.approx(result.parameter_history[-1], abs=0.2)

    def test_blocking_rejects_bad_steps(self):
        result = SPSA(maxiter=40, seed=5, blocking=True, allowed_increase=0.0).minimize(
            quadratic, [3.0]
        )
        # Accepted-iteration values never increase when blocking with zero allowance.
        diffs = np.diff(result.history)
        assert (diffs <= 1e-12).all()

    def test_blocking_reports_convergence_honestly(self):
        # An allowance of -inf rejects every candidate: the optimizer must not
        # claim convergence, and the metadata must say zero steps accepted.
        result = SPSA(maxiter=15, seed=5, blocking=True, allowed_increase=-np.inf).minimize(
            quadratic, [3.0]
        )
        assert result.converged is False
        assert result.metadata["accepted_steps"] == 0
        assert "0/15" in result.message
        assert np.array_equal(result.optimal_parameters, [3.0])

    def test_blocking_accepted_fraction_in_metadata(self):
        result = SPSA(maxiter=40, seed=5, blocking=True, allowed_increase=0.0).minimize(
            quadratic, [3.0]
        )
        fraction = result.metadata["accepted_fraction"]
        assert 0.0 < fraction <= 1.0
        assert result.metadata["accepted_steps"] == round(fraction * 40)
        assert result.converged is True

    def test_callback_invoked(self):
        calls = []
        SPSA(maxiter=5, seed=6, callback=lambda i, p, v: calls.append(i)).minimize(quadratic, [0.0])
        assert calls == list(range(5))

    def test_resamplings_average_gradient(self):
        result = SPSA(maxiter=20, seed=7, resamplings=3).minimize(quadratic, [3.0])
        assert result.num_evaluations == 1 + 2 * 3 * 20

    def test_empty_initial_point(self):
        with pytest.raises(OptimizerError):
            SPSA(maxiter=5).minimize(quadratic, [])


class TestScipyOptimizers:
    def test_unknown_method(self):
        with pytest.raises(OptimizerError):
            ScipyOptimizer(method="ANNEAL")

    def test_cobyla_converges(self):
        result = COBYLA(maxiter=200).minimize(quadratic, [4.0, -1.0])
        assert result.optimal_value < 1e-3

    def test_nelder_mead_converges(self):
        result = NelderMead(maxiter=300).minimize(quadratic, [4.0, -1.0])
        assert result.optimal_value < 1e-5

    def test_result_tracks_best_not_last(self):
        result = COBYLA(maxiter=50).minimize(quadratic, [2.0])
        assert result.optimal_value == pytest.approx(min(result.history))

    def test_optimizer_names(self):
        assert SPSA().name == "spsa"
        assert COBYLA().name == "cobyla"
        assert NelderMead().name == "nelder-mead"
