"""Tests for the classical optimizers."""

import numpy as np
import pytest

from repro.exceptions import OptimizerError
from repro.optimizers import COBYLA, NelderMead, SPSA, ScipyOptimizer, TrackingObjective


def quadratic(x):
    return float(np.sum((np.asarray(x) - 1.5) ** 2))


def noisy_quadratic_factory(scale, seed=0):
    rng = np.random.default_rng(seed)

    def objective(x):
        return quadratic(x) + float(rng.normal(0, scale))

    return objective


class TestTrackingObjective:
    def test_records_every_evaluation(self):
        tracked = TrackingObjective(quadratic)
        tracked(np.array([0.0]))
        tracked(np.array([1.0]))
        assert tracked.num_evaluations == 2
        assert len(tracked.points) == 2

    def test_best_returns_minimum_seen(self):
        tracked = TrackingObjective(quadratic)
        tracked(np.array([0.0]))
        tracked(np.array([1.4]))
        tracked(np.array([3.0]))
        point, value = tracked.best()
        assert point == pytest.approx([1.4])
        assert value == pytest.approx(quadratic([1.4]))

    def test_best_without_evaluations(self):
        with pytest.raises(OptimizerError):
            TrackingObjective(quadratic).best()


class TestSPSA:
    def test_invalid_configuration(self):
        with pytest.raises(OptimizerError):
            SPSA(maxiter=0)
        with pytest.raises(OptimizerError):
            SPSA(resamplings=0)

    def test_converges_on_quadratic(self):
        result = SPSA(maxiter=150, seed=1).minimize(quadratic, [4.0, -2.0])
        assert result.optimal_value < 0.05
        assert np.allclose(result.optimal_parameters, [1.5, 1.5], atol=0.3)

    def test_history_and_evaluation_count(self):
        optimizer = SPSA(maxiter=30, seed=2)
        result = optimizer.minimize(quadratic, [3.0])
        # One initial evaluation plus three per iteration (two gradient samples + candidate).
        assert result.num_evaluations == 1 + 3 * 30
        assert len(result.history) == 31

    def test_deterministic_for_fixed_seed(self):
        a = SPSA(maxiter=25, seed=3).minimize(quadratic, [2.0, 2.0])
        b = SPSA(maxiter=25, seed=3).minimize(quadratic, [2.0, 2.0])
        assert np.allclose(a.optimal_parameters, b.optimal_parameters)
        assert a.history == b.history

    def test_tolerates_noisy_objective(self):
        result = SPSA(maxiter=200, seed=4).minimize(noisy_quadratic_factory(0.05), [4.0])
        assert abs(result.optimal_parameters[0] - 1.5) < 0.5

    def test_blocking_rejects_bad_steps(self):
        result = SPSA(maxiter=40, seed=5, blocking=True, allowed_increase=0.0).minimize(
            quadratic, [3.0]
        )
        # Accepted-iteration values never increase when blocking with zero allowance.
        diffs = np.diff(result.history)
        assert (diffs <= 1e-12).all()

    def test_callback_invoked(self):
        calls = []
        SPSA(maxiter=5, seed=6, callback=lambda i, p, v: calls.append(i)).minimize(quadratic, [0.0])
        assert calls == list(range(5))

    def test_resamplings_average_gradient(self):
        result = SPSA(maxiter=20, seed=7, resamplings=3).minimize(quadratic, [3.0])
        assert result.num_evaluations == 1 + (2 * 3 + 1) * 20

    def test_empty_initial_point(self):
        with pytest.raises(OptimizerError):
            SPSA(maxiter=5).minimize(quadratic, [])


class TestScipyOptimizers:
    def test_unknown_method(self):
        with pytest.raises(OptimizerError):
            ScipyOptimizer(method="ANNEAL")

    def test_cobyla_converges(self):
        result = COBYLA(maxiter=200).minimize(quadratic, [4.0, -1.0])
        assert result.optimal_value < 1e-3

    def test_nelder_mead_converges(self):
        result = NelderMead(maxiter=300).minimize(quadratic, [4.0, -1.0])
        assert result.optimal_value < 1e-5

    def test_result_tracks_best_not_last(self):
        result = COBYLA(maxiter=50).minimize(quadratic, [2.0])
        assert result.optimal_value == pytest.approx(min(result.history))

    def test_optimizer_names(self):
        assert SPSA().name == "spsa"
        assert COBYLA().name == "cobyla"
        assert NelderMead().name == "nelder-mead"
