"""Tests for the density-matrix state representation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import ghz_circuit
from repro.exceptions import SimulationError
from repro.simulators import DensityMatrix, StatevectorSimulator, amplitude_damping_kraus, depolarizing_kraus

_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_CX = np.eye(4, dtype=complex)[[0, 1, 3, 2]]


class TestConstruction:
    def test_initial_state_is_zero(self):
        rho = DensityMatrix(2)
        assert rho.data[0, 0] == 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_from_statevector(self):
        state = np.array([1, 0, 0, 1]) / math.sqrt(2)
        rho = DensityMatrix.from_statevector(state)
        assert rho.num_qubits == 2
        assert rho.purity() == pytest.approx(1.0)

    def test_bad_dimensions(self):
        with pytest.raises(SimulationError):
            DensityMatrix(2, data=np.eye(3))
        with pytest.raises(SimulationError):
            DensityMatrix.from_statevector(np.ones(3))
        with pytest.raises(SimulationError):
            DensityMatrix(0)

    def test_copy_is_independent(self):
        rho = DensityMatrix(1)
        copy = rho.copy()
        copy.apply_unitary(_X, (0,))
        assert rho.data[0, 0] == 1.0


class TestEvolution:
    def test_single_qubit_unitary(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(_H, (0,))
        assert rho.probabilities() == pytest.approx([0.5, 0.5])

    def test_unitary_on_selected_qubit(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(_X, (1,))
        assert rho.probabilities() == pytest.approx([0, 1, 0, 0])

    def test_two_qubit_unitary_builds_bell_state(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(_H, (0,))
        rho.apply_unitary(_CX, (0, 1))
        probs = rho.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)
        assert rho.purity() == pytest.approx(1.0)

    def test_matches_statevector_simulator(self):
        circuit = ghz_circuit(3)
        statevector = StatevectorSimulator().run_statevector(circuit)
        rho = DensityMatrix(3)
        for inst in circuit.instructions:
            rho.apply_unitary(inst.gate.matrix(), inst.qubits)
        assert rho.fidelity_with_pure_state(statevector) == pytest.approx(1.0)

    def test_kraus_reduces_purity(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(_H, (0,))
        rho.apply_kraus(depolarizing_kraus(0.2), (0,))
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)
        assert rho.is_physical()

    def test_amplitude_damping_on_excited_state(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(_X, (0,))
        rho.apply_kraus(amplitude_damping_kraus(0.25), (0,))
        assert rho.probabilities() == pytest.approx([0.25, 0.75])

    def test_operator_dimension_check(self):
        rho = DensityMatrix(2)
        with pytest.raises(SimulationError):
            rho.apply_unitary(_H, (0, 1))

    @settings(max_examples=20, deadline=None)
    @given(p=st.floats(0, 0.5, allow_nan=False), angle=st.floats(0, 2 * math.pi, allow_nan=False))
    def test_states_stay_physical_under_noise(self, p, angle):
        rho = DensityMatrix(2)
        ry = np.array(
            [[math.cos(angle / 2), -math.sin(angle / 2)], [math.sin(angle / 2), math.cos(angle / 2)]],
            dtype=complex,
        )
        rho.apply_unitary(ry, (0,))
        rho.apply_unitary(_CX, (0, 1))
        rho.apply_kraus(depolarizing_kraus(p), (0,))
        rho.apply_kraus(amplitude_damping_kraus(p), (1,))
        assert rho.is_physical()
        assert rho.trace() == pytest.approx(1.0)


class TestMeasurement:
    def test_marginal_probabilities_order(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(_X, (1,))  # state |01>
        assert rho.marginal_probabilities([1]) == pytest.approx([0, 1])
        assert rho.marginal_probabilities([0]) == pytest.approx([1, 0])
        assert rho.marginal_probabilities([1, 0]) == pytest.approx([0, 0, 1, 0])

    def test_sample_counts_total(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(_H, (0,))
        counts = rho.sample_counts(1000, rng=np.random.default_rng(0))
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"0", "1"}

    def test_sample_counts_deterministic_state(self):
        rho = DensityMatrix(2)
        counts = rho.sample_counts(100, rng=np.random.default_rng(0))
        assert counts == {"00": 100}

    def test_expectation(self):
        rho = DensityMatrix(1)
        z = np.diag([1.0, -1.0]).astype(complex)
        assert rho.expectation(z) == pytest.approx(1.0)
        rho.apply_unitary(_X, (0,))
        assert rho.expectation(z) == pytest.approx(-1.0)

    def test_expectation_dimension_check(self):
        rho = DensityMatrix(2)
        with pytest.raises(SimulationError):
            rho.expectation(np.eye(2))

    def test_fidelity_with_pure_state(self):
        rho = DensityMatrix(1)
        assert rho.fidelity_with_pure_state([1, 0]) == pytest.approx(1.0)
        assert rho.fidelity_with_pure_state([0, 1]) == pytest.approx(0.0)
