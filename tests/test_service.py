"""Tests for the multi-tenant service tier (:mod:`repro.service`).

Four layers:

* **Unit** — token bucket and admission gates under an injected clock, the
  LRU result store, envelope validation, error payload round-trips.
* **Parity** — results served over HTTP (including cross-tenant dedupe hits
  from the fleet store) are bit-identical to a direct in-process
  ``run``/``expectation`` on an identically-configured engine, pinned on
  both the dense and PTM kernels.
* **Conformance** — golden request/response fixtures under
  ``tests/fixtures/service/`` pin the v1 wire protocol: success shapes,
  every rejection class, the metrics payload.
* **Robustness** — the mutation classes from :mod:`randomized` thrown at the
  HTTP boundary: every corrupted envelope earns a typed 4xx (never a 500),
  and the server keeps serving bit-identical results afterwards.
"""

from __future__ import annotations

import json
import http.client
import pathlib

import numpy as np
import pytest

import randomized
from repro.circuits import QuantumCircuit, efficient_su2
from repro.engine import NoisyDensityMatrixEngine
from repro.exceptions import (
    QueueDepthError,
    RateLimitError,
    ResourceLimitError,
    ServiceProtocolError,
)
from repro.frontend import ResourceLimits, ingest_json, schedule_to_json
from repro.operators import PauliSum
from repro.service import (
    AdmissionController,
    EngineServer,
    ResultStore,
    ServiceClient,
    ServiceConfig,
    TenantPolicy,
    TokenBucket,
    parse_envelope,
)
from repro.service.metrics import percentile
from repro.service.protocol import error_payload, raise_for_error
from repro.transpiler import transpile

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures" / "service"

BELL_DOC = {
    "format": "repro-circuit", "version": 1, "num_qubits": 2, "num_clbits": 2,
    "instructions": [
        {"gate": "h", "qubits": [0]},
        {"gate": "cx", "qubits": [0, 1]},
        {"gate": "measure", "qubits": [0], "clbits": [0]},
        {"gate": "measure", "qubits": [1], "clbits": [1]},
    ],
}


class _Clock:
    """An injectable monotonic clock the admission tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _raw_request(server, method, path, body=None, tenant_header=None):
    """One HTTP exchange against ``server``, returning ``(status, payload)``."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        raw = None
        if isinstance(body, (dict, list)):
            raw = json.dumps(body).encode("utf-8")
        elif isinstance(body, str):
            raw = body.encode("utf-8")
        elif isinstance(body, bytes):
            raw = body
        connection.request(method, path, body=raw, headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


# ----------------------------------------------------------------------------
# Unit: admission control
# ----------------------------------------------------------------------------

class TestAdmission:
    def test_token_bucket_starts_full_and_reports_exact_retry(self):
        bucket = TokenBucket(rate=2.0, burst=2, now=0.0)
        assert bucket.try_acquire(0.0) is None
        assert bucket.try_acquire(0.0) is None
        # Empty: the next token exists in exactly 1/rate seconds.
        assert bucket.try_acquire(0.0) == pytest.approx(0.5)
        # Refill is proportional to elapsed time, capped at the burst.
        assert bucket.try_acquire(0.5) is None
        assert bucket.try_acquire(100.0) is None
        assert bucket.try_acquire(100.0) is None
        assert bucket.try_acquire(100.0) == pytest.approx(0.5)

    def test_rate_gate_rejects_with_retry_after(self):
        clock = _Clock()
        config = ServiceConfig(
            default_policy=TenantPolicy(rate_per_second=1.0, burst=2), clock=clock
        )
        controller = AdmissionController(config, engine_max_pending=8)
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(RateLimitError) as caught:
            controller.admit("a")
        assert caught.value.retry_after == pytest.approx(1.0)
        # The rejected attempt consumed a rate token but no queue depth.
        assert controller.tenant_in_flight("a") == 2
        # Tokens return with time; other tenants have independent buckets.
        clock.now = 1.0
        controller.admit("b")
        controller.admit("a")

    def test_depth_gates_tenant_then_fleet(self):
        clock = _Clock()
        config = ServiceConfig(
            default_policy=TenantPolicy(
                rate_per_second=1000.0, burst=1000, max_queue_depth=2
            ),
            clock=clock,
        )
        controller = AdmissionController(config, engine_max_pending=3)
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(QueueDepthError):
            controller.admit("a")  # per-tenant bound
        controller.admit("b")
        with pytest.raises(QueueDepthError):
            controller.admit("b")  # fleet bound (3 in flight)
        controller.release("a")
        controller.admit("b")
        assert controller.in_flight == 3
        assert controller.tenant_in_flight("a") == 1
        assert controller.tenant_in_flight("b") == 2


# ----------------------------------------------------------------------------
# Unit: result store, metrics helpers, protocol validation
# ----------------------------------------------------------------------------

class TestStore:
    def test_lru_eviction_and_counters(self):
        store = ResultStore(max_entries=2)
        assert store.get("a") is None
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        assert store.get("a") == {"v": 1}  # refreshes a
        store.put("c", {"v": 3})  # evicts b (least recently used)
        assert store.get("b") is None
        assert store.get("a") == {"v": 1}
        assert store.get("c") == {"v": 3}
        assert (store.hits, store.misses) == (3, 2)
        assert store.hit_rate == pytest.approx(3 / 5)

    def test_none_key_is_uncacheable(self):
        store = ResultStore()
        store.put(None, {"v": 1})
        assert store.get(None) is None
        assert len(store) == 0


def test_percentile_nearest_rank():
    samples = sorted([0.1, 0.2, 0.3, 0.4])
    assert percentile(samples, 0.50) == 0.2
    assert percentile(samples, 0.99) == 0.4
    assert percentile([], 0.5) == 0.0


class TestEnvelope:
    @pytest.mark.parametrize(
        "body",
        [
            [],  # not an object
            {"tenant": "t"},  # missing programs
            {"tenant": "t", "programs": []},  # empty programs
            {"tenant": "", "programs": [{"program": {}}]},  # empty tenant
            {"tenant": "t", "programs": [{"program": {}}], "extra": 1},
            {"tenant": "t", "protocol": 2, "programs": [{"program": {}}]},
            {"tenant": "t", "programs": [{"program": {}, "op": "teleport"}]},
            {"tenant": "t", "programs": [{"program": "text"}]},
            {"tenant": "t", "programs": [{"program": {}, "shots": 0}]},
            {"tenant": "t", "programs": [{"program": {}, "shots": True}]},
            {"tenant": "t", "programs": [{"program": {}, "observable": [["Z", 1.0]]}]},
            {"tenant": "t", "programs": [{"program": {}, "op": "expectation"}]},
            {"tenant": "t", "programs": [{"program": {}, "op": "expectation", "observable": [["Z", True]]}]},
        ],
    )
    def test_rejects_malformed_envelopes(self, body):
        with pytest.raises(ServiceProtocolError):
            parse_envelope(body)

    def test_accepts_minimal_envelope(self):
        tenant, programs = parse_envelope(
            {"tenant": "t", "programs": [{"program": {"format": "x"}}]}
        )
        assert tenant == "t"
        assert programs[0].op == "run"
        assert programs[0].shots is None

    def test_error_payload_round_trips_typed_extras(self):
        error = ResourceLimitError(
            "too wide", limit_name="max_qubits", limit=1, actual=2
        )
        payload = error_payload(error, program_index=3)
        with pytest.raises(ResourceLimitError) as caught:
            raise_for_error(400, payload)
        rebuilt = caught.value
        assert rebuilt.status == 400
        assert rebuilt.program_index == 3
        assert (rebuilt.limit_name, rebuilt.limit, rebuilt.actual) == ("max_qubits", 1, 2)


# ----------------------------------------------------------------------------
# Parity: served results are bit-identical to direct execution, both kernels
# ----------------------------------------------------------------------------

@pytest.fixture(scope="module", params=("dense", "ptm"))
def kernel(request):
    return request.param


@pytest.fixture(scope="module")
def parity_server(device_noise, kernel):
    engine = NoisyDensityMatrixEngine(device_noise, seed=11, kernel=kernel)
    server = EngineServer(engine, own_engine=True).start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def direct_engine(device_noise, kernel):
    engine = NoisyDensityMatrixEngine(device_noise, seed=11, kernel=kernel)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def schedule_doc(device):
    ansatz = efficient_su2(3, reps=1, entanglement="linear")
    rng = np.random.default_rng(1234)
    circuit = ansatz.bind_parameters(rng.uniform(-np.pi, np.pi, ansatz.num_parameters))
    circuit.measure_all()
    return json.loads(schedule_to_json(transpile(circuit, device).scheduled))


class TestParity:
    def test_run_results_bit_identical_and_cross_tenant_dedupe(
        self, parity_server, direct_engine, schedule_doc, kernel
    ):
        for name, document in (("bell", BELL_DOC), ("su2", schedule_doc)):
            alice = ServiceClient(
                parity_server.host, parity_server.port, tenant=f"alice-{name}"
            )
            served = alice.run(document)
            payload = ingest_json(document).engine_payload(direct_engine)
            direct = direct_engine.run(payload)
            assert served["fingerprint"] == direct.fingerprint
            assert served["probabilities"] == [float(v) for v in direct.probabilities]
            assert served["clbit_order"] == [int(b) for b in direct.clbit_order]
            # A different tenant submitting identical content is served from
            # the fleet store — and the hit is bit-identical to the miss.
            bob = ServiceClient(
                parity_server.host, parity_server.port, tenant=f"bob-{name}"
            )
            again = bob.run(document)
            assert again["store"] == "hit"
            assert {k: v for k, v in again.items() if k != "store"} == {
                k: v for k, v in served.items() if k != "store"
            }

    def test_expectation_parity_exact_and_sampled(self, parity_server, direct_engine):
        observable = PauliSum.from_list([("ZZ", 0.75), ("XX", 0.25)])
        terms = [["ZZ", 0.75], ["XX", 0.25]]
        client = ServiceClient(parity_server.host, parity_server.port, tenant="carol")
        payload = ingest_json(BELL_DOC).engine_payload(direct_engine)
        exact = client.expectation(BELL_DOC, terms)
        assert exact == direct_engine.expectation(payload, observable, shots=None)
        # Sampled values are pure functions of (engine seed, content), so the
        # seeded service engine reproduces the direct engine's draw exactly.
        sampled = client.expectation(BELL_DOC, terms, shots=256)
        assert sampled == direct_engine.expectation(payload, observable, shots=256)
        # And a second tenant's identical sampled query is a store hit.
        other = ServiceClient(parity_server.host, parity_server.port, tenant="dave")
        assert other.expectation(BELL_DOC, terms, shots=256) == sampled
        store = client.metrics()["fleet"]["store"]
        assert store["hits"] >= 1

    def test_client_serializes_circuit_and_schedule_objects(
        self, parity_server, device
    ):
        client = ServiceClient(parity_server.host, parity_server.port, tenant="erin")
        circuit = QuantumCircuit(2, 2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        from_circuit = client.run(circuit)
        from_schedule = client.run(transpile(circuit, device).scheduled)
        assert from_circuit["probabilities"]
        assert from_schedule["probabilities"]

    def test_metrics_counters_are_consistent(self, parity_server):
        metrics = ServiceClient(
            parity_server.host, parity_server.port, tenant="erin"
        ).metrics()
        for tenant, counters in metrics["tenants"].items():
            assert counters["submitted"] == counters["completed"] + sum(
                counters["rejected"].values()
            ), tenant
            assert counters["latency"]["count"] == counters["completed"]
        fleet = metrics["fleet"]
        assert fleet["store"]["hits"] + fleet["store"]["misses"] > 0
        assert fleet["requests"] >= sum(
            counters["submitted"] for counters in metrics["tenants"].values()
        )


# ----------------------------------------------------------------------------
# Conformance: golden wire-format fixtures
# ----------------------------------------------------------------------------

def _assert_matches(template, actual, path="$"):
    """Structural comparison: placeholder strings match by type, everything
    else must be equal; objects must have exactly the template's keys."""
    placeholders = {
        "<str>": str,
        "<int>": int,
        "<float>": (int, float),
        "<bool>": bool,
        "<object>": dict,
        "<any>": object,
    }
    if isinstance(template, str) and template in placeholders:
        assert isinstance(actual, placeholders[template]), f"{path}: {actual!r} is not {template}"
        return
    if template == "<list[float]>":
        assert isinstance(actual, list) and all(
            isinstance(v, float) for v in actual
        ), f"{path}: {actual!r} is not a list of floats"
        return
    if template == "<list[int]>":
        assert isinstance(actual, list) and all(
            isinstance(v, int) for v in actual
        ), f"{path}: {actual!r} is not a list of ints"
        return
    if isinstance(template, dict):
        assert isinstance(actual, dict), f"{path}: expected object, got {actual!r}"
        assert set(actual) == set(template), (
            f"{path}: keys {sorted(actual)} != {sorted(template)}"
        )
        for key, value in template.items():
            _assert_matches(value, actual[key], f"{path}.{key}")
        return
    if isinstance(template, list):
        assert isinstance(actual, list) and len(actual) == len(template), (
            f"{path}: expected {len(template)} entries, got {actual!r}"
        )
        for index, value in enumerate(template):
            _assert_matches(value, actual[index], f"{path}[{index}]")
        return
    assert actual == template, f"{path}: {actual!r} != {template!r}"


@pytest.fixture(scope="module")
def conformance_servers(device_noise):
    """Lazily-built servers, one per fixture-declared configuration."""
    servers = {}

    def build(variant):
        if variant in servers:
            return servers[variant]
        if variant == "strict_rate":
            config = ServiceConfig(
                default_policy=TenantPolicy(rate_per_second=1e-9, burst=1)
            )
        elif variant == "zero_inflight":
            config = ServiceConfig(max_inflight_requests=0)
        elif variant == "tiny_limits":
            config = ServiceConfig(
                default_policy=TenantPolicy(limits=ResourceLimits(max_instructions=1))
            )
        else:  # "default", "metrics", "closing" use stock config
            config = ServiceConfig()
        engine = NoisyDensityMatrixEngine(device_noise, seed=7)
        server = EngineServer(engine, config, own_engine=True).start()
        if variant == "closing":
            server.service.begin_shutdown()
        servers[variant] = server
        return server

    yield build
    for server in servers.values():
        server.close()


@pytest.mark.parametrize(
    "fixture_path", sorted(FIXTURE_DIR.glob("*.json")), ids=lambda p: p.stem
)
def test_wire_format_conformance(fixture_path, conformance_servers):
    fixture = json.loads(fixture_path.read_text())
    server = conformance_servers(fixture.get("server", "default"))
    for setup in fixture.get("setup", []):
        _raw_request(server, setup["method"], setup["path"], setup.get("body"))
    request = fixture["request"]
    body = request.get("body_raw", request.get("body"))
    status, payload = _raw_request(server, request["method"], request["path"], body)
    assert status == fixture["response"]["status"], payload
    _assert_matches(fixture["response"]["body"], payload)


# ----------------------------------------------------------------------------
# Robustness: mutated envelopes at the HTTP boundary
# ----------------------------------------------------------------------------

def test_http_boundary_survives_corrupted_envelopes(device_noise):
    engine = NoisyDensityMatrixEngine(device_noise, seed=3)
    config = ServiceConfig(
        default_policy=TenantPolicy(rate_per_second=10_000.0, burst=10_000)
    )
    with EngineServer(engine, config, own_engine=True) as server:
        envelope_text = json.dumps(
            {"protocol": 1, "tenant": "fuzz", "programs": [{"op": "run", "program": BELL_DOC}]}
        )
        baseline_status, baseline = _raw_request(server, "POST", "/v1/submit", envelope_text)
        assert baseline_status == 200
        case = 0
        for kind in randomized.CORRUPTION_KINDS:
            for seed in range(4):
                _, corrupted = randomized.corrupt_program(
                    envelope_text, seed=9100 + case, kind=kind
                )
                case += 1
                status, payload = _raw_request(server, "POST", "/v1/submit", corrupted)
                # Typed outcome, never an internal error: a mutation either
                # still parses (200) or earns a 4xx rejection class.
                assert status in (200, 400, 413, 429), (kind, seed, payload)
                assert payload.get("protocol") == 1, (kind, seed, payload)
        # The server survived every mutation and still serves bit-identical
        # results (from the fleet store, matching the pre-fuzz baseline).
        status, after = _raw_request(server, "POST", "/v1/submit", envelope_text)
        assert status == 200
        first, second = baseline["results"][0], after["results"][0]
        assert second["store"] == "hit"
        assert second["probabilities"] == first["probabilities"]
        assert server.service.metrics.protocol_errors > 0
