"""Tests for the coupling map and layout selection."""

import pytest

from repro.circuits import QuantumCircuit, efficient_su2
from repro.exceptions import TranspilerError
from repro.transpiler import CouplingMap, Layout, noise_aware_layout, select_qubit_subset


class TestCouplingMap:
    def test_from_device(self, device):
        coupling = CouplingMap.from_device(device)
        assert coupling.num_qubits == 7
        assert coupling.are_adjacent(1, 3)
        assert not coupling.are_adjacent(0, 6)

    def test_distance_and_path(self, device):
        coupling = CouplingMap.from_device(device)
        assert coupling.distance(0, 1) == 1
        path = coupling.shortest_path(0, 6)
        assert path[0] == 0 and path[-1] == 6
        assert len(path) - 1 == coupling.distance(0, 6)

    def test_disconnected_pair_raises(self):
        coupling = CouplingMap([(0, 1)], num_qubits=3)
        with pytest.raises(TranspilerError):
            coupling.distance(0, 2)

    def test_invalid_edge(self):
        with pytest.raises(TranspilerError):
            CouplingMap([(0, 0)])

    def test_is_connected_subsets(self, device):
        coupling = CouplingMap.from_device(device)
        assert coupling.is_connected([0, 1, 2])
        assert not coupling.is_connected([0, 6])

    def test_subgraph_reindexes(self, device):
        coupling = CouplingMap.from_device(device)
        sub = coupling.subgraph([1, 3, 5])
        assert sub.num_qubits == 3
        assert sub.are_adjacent(0, 1)  # physical 1-3
        assert sub.are_adjacent(1, 2)  # physical 3-5

    def test_connected_subsets_enumeration(self, device):
        coupling = CouplingMap.from_device(device)
        subsets = coupling.connected_subsets(3)
        assert all(len(s) == 3 for s in subsets)
        assert all(coupling.is_connected(s) for s in subsets)
        assert (0, 1, 2) in subsets

    def test_connected_subsets_invalid_size(self, device):
        coupling = CouplingMap.from_device(device)
        with pytest.raises(TranspilerError):
            coupling.connected_subsets(0)


class TestLayout:
    def test_bijective(self):
        with pytest.raises(TranspilerError):
            Layout({0: 1, 1: 1})

    def test_lookup_and_swap(self):
        layout = Layout({0: 2, 1: 5})
        assert layout.physical(0) == 2
        assert layout.virtual(5) == 1
        layout.swap_physical(2, 5)
        assert layout.physical(0) == 5
        assert layout.physical(1) == 2

    def test_swap_with_unmapped_physical(self):
        layout = Layout({0: 2})
        layout.swap_physical(2, 3)
        assert layout.physical(0) == 3

    def test_physical_qubits_in_virtual_order(self):
        layout = Layout({1: 0, 0: 4})
        assert layout.physical_qubits() == [4, 0]


class TestSelection:
    def test_select_subset_is_connected(self, device):
        from repro.transpiler import CouplingMap

        subset = select_qubit_subset(device, 4)
        assert len(subset) == 4
        assert CouplingMap.from_device(device).is_connected(subset)

    def test_select_subset_too_large(self, device):
        with pytest.raises(TranspilerError):
            select_qubit_subset(device, 8)

    def test_noise_aware_layout_width(self, device):
        ansatz = efficient_su2(4, reps=1, entanglement="circular")
        bound = ansatz.bind_parameters([0.1] * ansatz.num_parameters)
        layout, active = noise_aware_layout(bound, device)
        assert len(active) == 4
        assert sorted(layout.v2p.keys()) == [0, 1, 2, 3]
        assert set(layout.physical_qubits()) == set(active)

    def test_noise_aware_layout_explicit_qubits(self, device):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        layout, active = noise_aware_layout(circuit, device, physical_qubits=[1, 3, 5])
        assert active == [1, 3, 5]

    def test_explicit_qubits_wrong_width(self, device):
        circuit = QuantumCircuit(3)
        with pytest.raises(TranspilerError):
            noise_aware_layout(circuit, device, physical_qubits=[0, 1])

    def test_disconnected_explicit_qubits_rejected(self, device):
        circuit = QuantumCircuit(2)
        with pytest.raises(TranspilerError):
            noise_aware_layout(circuit, device, physical_qubits=[0, 6])

    def test_interacting_pairs_prefer_adjacency(self, device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        layout, _ = noise_aware_layout(circuit, device)
        assert device.is_coupled(layout.physical(0), layout.physical(1))
