"""Unit and property tests for Pauli strings and Pauli sums."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import VQEError
from repro.operators import PauliString, PauliSum

_pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=4)


class TestPauliString:
    def test_invalid_label(self):
        with pytest.raises(VQEError):
            PauliString("AB")
        with pytest.raises(VQEError):
            PauliString("")

    def test_weight_and_support(self):
        pauli = PauliString("IXZI")
        assert pauli.weight() == 2
        assert pauli.support() == (1, 2)

    def test_identity_detection(self):
        assert PauliString("III").is_identity()
        assert not PauliString("IXI").is_identity()

    def test_matrix_of_zz(self):
        matrix = PauliString("ZZ").to_matrix()
        assert np.allclose(matrix, np.diag([1, -1, -1, 1]))

    def test_matrix_is_hermitian_and_involutory(self):
        matrix = PauliString("XYZ").to_matrix()
        assert np.allclose(matrix, matrix.conj().T)
        assert np.allclose(matrix @ matrix, np.eye(8))

    def test_qubitwise_commutation(self):
        assert PauliString("XI").commutes_qubitwise(PauliString("XZ"))
        assert not PauliString("XI").commutes_qubitwise(PauliString("ZI"))

    def test_commutation_width_mismatch(self):
        with pytest.raises(VQEError):
            PauliString("X").commutes_qubitwise(PauliString("XX"))

    def test_expectation_sign(self):
        pauli = PauliString("ZIZ")
        assert pauli.expectation_sign("000") == 1
        assert pauli.expectation_sign("001") == -1
        assert pauli.expectation_sign("101") == 1
        # Identity positions do not contribute.
        assert pauli.expectation_sign("010") == 1

    def test_expectation_sign_width_mismatch(self):
        with pytest.raises(VQEError):
            PauliString("ZZ").expectation_sign("0")

    @given(label=_pauli_labels)
    def test_matrix_trace_is_zero_unless_identity(self, label):
        pauli = PauliString(label)
        trace = np.trace(pauli.to_matrix())
        if pauli.is_identity():
            assert trace == pytest.approx(2 ** pauli.num_qubits)
        else:
            assert abs(trace) == pytest.approx(0.0, abs=1e-9)


class TestPauliSum:
    def test_requires_terms_or_width(self):
        with pytest.raises(VQEError):
            PauliSum()

    def test_add_term_accumulates(self):
        ham = PauliSum({"ZZ": 0.5})
        ham.add_term("ZZ", 0.25)
        assert ham.coefficient("ZZ") == pytest.approx(0.75)

    def test_cancelling_terms_are_removed(self):
        ham = PauliSum({"XX": 1.0})
        ham.add_term("XX", -1.0)
        assert ham.num_terms == 0

    def test_width_mismatch_rejected(self):
        ham = PauliSum({"ZZ": 1.0})
        with pytest.raises(VQEError):
            ham.add_term("ZZZ", 1.0)

    def test_from_list(self):
        ham = PauliSum.from_list([("XI", 0.5), ("IZ", -0.25)])
        assert ham.num_terms == 2
        assert ham.num_qubits == 2

    def test_identity_coefficient(self):
        ham = PauliSum({"II": -1.5, "ZZ": 1.0})
        assert ham.identity_coefficient() == pytest.approx(-1.5)
        assert len(ham.non_identity_terms()) == 1

    def test_truncate_keeps_identity(self):
        ham = PauliSum({"II": -3.0, "ZZ": 0.001, "XX": 0.5})
        truncated = ham.truncate(0.01)
        assert truncated.coefficient("ZZ") == 0.0
        assert truncated.identity_coefficient() == pytest.approx(-3.0)
        assert truncated.coefficient("XX") == pytest.approx(0.5)

    def test_addition_and_scaling(self):
        a = PauliSum({"ZZ": 1.0})
        b = PauliSum({"ZZ": 0.5, "XX": 2.0})
        combined = a + b * 2.0
        assert combined.coefficient("ZZ") == pytest.approx(2.0)
        assert combined.coefficient("XX") == pytest.approx(4.0)
        assert (-a).coefficient("ZZ") == pytest.approx(-1.0)

    def test_matrix_is_hermitian(self, tfim4):
        matrix = tfim4.to_matrix()
        assert np.allclose(matrix, matrix.conj().T)

    def test_ground_energy_matches_numpy(self, tfim4):
        eigvals = np.linalg.eigvalsh(tfim4.to_matrix())
        assert tfim4.ground_energy() == pytest.approx(eigvals[0])

    def test_ground_state_is_eigenvector(self, tfim4):
        energy, state = tfim4.ground_state()
        residual = tfim4.to_matrix() @ state - energy * state
        assert np.linalg.norm(residual) == pytest.approx(0.0, abs=1e-9)

    def test_expectation_from_statevector(self):
        ham = PauliSum({"Z": 1.0})
        assert ham.expectation_from_statevector([1, 0]) == pytest.approx(1.0)
        assert ham.expectation_from_statevector([0, 1]) == pytest.approx(-1.0)
        plus = np.array([1, 1]) / np.sqrt(2)
        assert ham.expectation_from_statevector(plus) == pytest.approx(0.0, abs=1e-12)

    def test_expectation_from_density_matrix(self):
        ham = PauliSum({"Z": 2.0})
        mixed = 0.5 * np.eye(2)
        assert ham.expectation_from_density_matrix(mixed) == pytest.approx(0.0)

    def test_expectation_dimension_checks(self):
        ham = PauliSum({"ZZ": 1.0})
        with pytest.raises(VQEError):
            ham.expectation_from_statevector([1, 0])
        with pytest.raises(VQEError):
            ham.expectation_from_density_matrix(np.eye(2))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["II", "XI", "IZ", "ZZ", "XX", "YY"]),
                              st.floats(-2, 2, allow_nan=False)), min_size=1, max_size=6))
    def test_ground_energy_is_a_lower_bound_for_random_states(self, terms):
        ham = PauliSum.from_list(terms, num_qubits=2)
        rng = np.random.default_rng(0)
        ground = ham.ground_energy()
        for _ in range(5):
            vec = rng.normal(size=4) + 1j * rng.normal(size=4)
            vec = vec / np.linalg.norm(vec)
            assert ham.expectation_from_statevector(vec) >= ground - 1e-9


class TestMeasurementGrouping:
    def test_tfim_groups_into_two_bases(self, tfim4):
        groups = tfim4.group_commuting()
        bases = sorted(g.basis for g in groups)
        assert len(groups) == 2
        assert bases == ["XXXX", "ZZZZ"]

    def test_identity_excluded_from_groups(self):
        ham = PauliSum({"II": -1.0, "ZZ": 0.5})
        groups = ham.group_commuting()
        assert len(groups) == 1
        assert groups[0].terms[0][0].label == "ZZ"

    def test_group_coverage_is_complete(self):
        ham = PauliSum({"XX": 1.0, "YY": 0.5, "ZZ": 0.25, "XI": 0.1})
        groups = ham.group_commuting()
        covered = sorted(p.label for g in groups for p, _ in g.terms)
        assert covered == ["XI", "XX", "YY", "ZZ"]

    def test_group_rejects_noncommuting_add(self):
        from repro.operators.pauli import MeasurementGroup

        group = MeasurementGroup(2)
        group.add(PauliString("XX"), 1.0)
        with pytest.raises(VQEError):
            group.add(PauliString("ZZ"), 1.0)

    def test_mixed_basis_group(self):
        ham = PauliSum({"XZ": 1.0, "XI": 0.5, "IZ": 0.25})
        groups = ham.group_commuting()
        assert len(groups) == 1
        assert groups[0].basis == "XZ"
