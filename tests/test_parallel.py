"""Tests for the multi-core process tier (:mod:`repro.engine.parallel`).

Covers the guarantees the parallel subsystem promises:

* serial / thread / process parity — bit-identical results at ``shots=None``
  and seed-deterministic sampled values otherwise, on all three engines;
* cache merge-on-return — a process batch leaves the parent engine's
  content-hash caches as warm as a serial one, and stats deltas fold back;
* the prefix-aware shard scheduler — common-prefix grouping, duplicate
  co-location, cost balancing, degenerate sizes;
* the ``(parallelism, max_workers)`` knob resolution, including the removed
  historical ``max_workers``-only behaviour;
* frontend routing — estimator batches and window-tuner sweeps produce
  identical outcomes on every tier.

The suite deliberately uses ``max_workers=2``: the CI container may expose a
single core, and two workers exercise every protocol path (sharding, payload
dedup, merge-back) without oversubscribing it.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import efficient_su2
from repro.engine import (
    FakeDeviceEngine,
    NoisyDensityMatrixEngine,
    StatevectorEngine,
    circuit_hash_chain,
    plan_shards,
    resolve_parallelism,
)
from repro.engine.parallel import ParallelismPlan, common_prefix_length
from repro.exceptions import EngineError, VAQEMError
from repro.mitigation import DDConfig, insert_dd_sequences
from repro.mitigation.gate_scheduling import GSConfig, reschedule_gate
from repro.transpiler import transpile
from repro.vaqem import IndependentWindowTuner, TuningBudget, VAQEMConfig
from repro.vqe import ExpectationEstimator

WORKERS = 2

MODES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def sweep_schedules(device):
    """A compiled ansatz plus window-tuner-style candidates (with duplicates)."""
    ansatz = efficient_su2(4, reps=2, entanglement="circular")
    rng = np.random.default_rng(21)
    bound = ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
    bound.measure_all()
    compiled = transpile(bound, device)
    schedules = [compiled.scheduled]
    for window in compiled.idle_windows[:3]:
        schedules.append(reschedule_gate(compiled.scheduled, window, GSConfig(0.5)))
        try:
            schedules.append(insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", 1)))
        except Exception:
            pass
    schedules.append(compiled.scheduled.copy())  # content-identical duplicate
    return compiled, schedules


@pytest.fixture(scope="module")
def logical_circuits():
    """Distinct bound ansatz circuits plus a duplicate."""
    ansatz = efficient_su2(4, reps=1, entanglement="linear")
    rng = np.random.default_rng(8)
    circuits = [
        ansatz.bind_parameters(rng.uniform(-math.pi, math.pi, ansatz.num_parameters))
        for _ in range(5)
    ]
    circuits.append(circuits[0].copy())
    return circuits


# ----------------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------------

class TestResolveParallelism:
    def test_legacy_max_workers_semantics(self):
        assert resolve_parallelism(None, None, 8) == ParallelismPlan("serial", 1)
        assert resolve_parallelism(None, 1, 8) == ParallelismPlan("serial", 1)
        # The implied-threads path went through its deprecation cycle and is
        # now removed: the error points callers at the migration notes.
        with pytest.raises(EngineError, match="docs/api.md"):
            resolve_parallelism(None, 4, 8)

    def test_removed_implied_threads_raises_from_batch_calls(self, logical_circuits):
        engine = StatevectorEngine(seed=1)
        with pytest.raises(EngineError, match="parallelism='thread'"):
            engine.run_batch(logical_circuits, max_workers=4)

    def test_explicit_modes(self):
        assert resolve_parallelism("serial", 16, 8).mode == "serial"
        assert resolve_parallelism("thread", 3, 8) == ParallelismPlan("thread", 3)
        assert resolve_parallelism("process", 3, 8) == ParallelismPlan("process", 3)

    def test_degenerate_requests_collapse_to_serial(self):
        assert resolve_parallelism("process", 4, 1).mode == "serial"
        assert resolve_parallelism("process", 1, 8).mode == "serial"
        assert resolve_parallelism("thread", 4, 0).mode == "serial"

    def test_workers_clamped_to_items(self):
        assert resolve_parallelism("process", 16, 3).workers == 3

    def test_unknown_mode_raises(self):
        with pytest.raises(EngineError):
            resolve_parallelism("gpu", 4, 8)


# ----------------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------------

class TestPlanShards:
    def test_common_prefix_length(self):
        assert common_prefix_length(["a", "b", "c"], ["a", "b", "d"]) == 2
        assert common_prefix_length(["a"], ["a", "b"]) == 1
        assert common_prefix_length(["x"], ["y"]) == 0

    def test_every_item_assigned_exactly_once(self):
        chains = [[f"root{i % 3}", f"leaf{i}"] for i in range(10)]
        shards = plan_shards(chains, 3)
        flattened = sorted(index for shard in shards for index in shard)
        assert flattened == list(range(10))
        assert all(shard for shard in shards)

    def test_prefix_families_stay_contiguous(self):
        # Two families sharing long prefixes; the cut must fall between them.
        family_a = [["r", "a", f"a{i}"] for i in range(4)]
        family_b = [["r", "b", f"b{i}"] for i in range(4)]
        chains = family_a + family_b
        shards = plan_shards(chains, 2)
        assert len(shards) == 2
        for shard in shards:
            families = {chains[index][1] for index in shard}
            assert len(families) == 1

    def test_duplicates_never_split(self):
        chains = [["r", "x"]] * 6 + [["r", "y"]] * 2
        shards = plan_shards(chains, 4)
        by_content = {}
        for shard_number, shard in enumerate(shards):
            for index in shard:
                by_content.setdefault(chains[index][-1], set()).add(shard_number)
        assert all(len(shard_numbers) == 1 for shard_numbers in by_content.values())

    def test_degenerate_sizes(self):
        assert plan_shards([], 4) == []
        assert plan_shards([["a"]], 4) == [[0]]
        shards = plan_shards([["a"], ["b"], ["c"]], 10)
        assert sorted(index for shard in shards for index in shard) == [0, 1, 2]


# ----------------------------------------------------------------------------
# Engine parity across tiers
# ----------------------------------------------------------------------------

class TestNoisyEngineParity:
    def _engines(self, device_noise, seed=1):
        return {mode: NoisyDensityMatrixEngine(device_noise, seed=seed) for mode in MODES}

    def test_run_batch_bit_identical_across_modes(self, device_noise, sweep_schedules):
        _, schedules = sweep_schedules
        engines = self._engines(device_noise)
        results = {
            mode: engine.run_batch(schedules, max_workers=WORKERS, parallelism=mode)
            for mode, engine in engines.items()
        }
        for mode in ("thread", "process"):
            for reference, other in zip(results["serial"], results[mode]):
                assert reference.fingerprint == other.fingerprint
                assert np.array_equal(reference.state.data, other.state.data)
                assert np.array_equal(reference.probabilities, other.probabilities)
        for engine in engines.values():
            engine.close()

    def test_expectation_batch_exact_and_sampled(self, device_noise, sweep_schedules, tfim4):
        _, schedules = sweep_schedules
        engines = self._engines(device_noise, seed=3)
        exact = {
            mode: engine.expectation_batch(
                schedules, tfim4, max_workers=WORKERS, parallelism=mode
            )
            for mode, engine in engines.items()
        }
        assert exact["serial"] == exact["thread"] == exact["process"]
        sampled = {
            mode: engine.expectation_batch(
                schedules, tfim4, shots=256, max_workers=WORKERS, parallelism=mode
            )
            for mode, engine in engines.items()
        }
        # Seed-deterministic: content-derived randomness is identical across
        # tiers and across engines constructed with the same seed.
        assert sampled["serial"] == sampled["thread"] == sampled["process"]
        for engine in engines.values():
            engine.close()

    def test_process_batch_merges_results_into_parent_cache(
        self, device_noise, sweep_schedules
    ):
        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=1)
        engine.run_batch(schedules, max_workers=WORKERS, parallelism="process")
        hits_before = engine.stats.cache_hits
        # Every schedule must now be served from the parent's own cache
        # without a process round-trip (run() is the serial path).
        for scheduled in schedules:
            assert engine.run(scheduled).from_cache
        assert engine.stats.cache_hits >= hits_before + len(schedules)
        engine.close()

    def test_worker_stats_fold_into_parent(self, device_noise, sweep_schedules):
        _, schedules = sweep_schedules
        serial = NoisyDensityMatrixEngine(device_noise, seed=1)
        serial.run_batch(schedules, parallelism="serial")
        process = NoisyDensityMatrixEngine(device_noise, seed=1)
        process.run_batch(schedules, max_workers=WORKERS, parallelism="process")
        # Executions: one per batch item on both paths (local + worker-side).
        assert process.stats.executions == serial.stats.executions
        assert process.stats.cache_misses >= 1
        assert process.stats.instructions_simulated >= 1
        serial.close()
        process.close()

    def test_unseeded_engine_process_path_executes(self, device_noise, sweep_schedules, tfim4):
        """Without a seed the process tier still works; sampled values are
        simply fresh entropy (no cross-tier determinism is promised)."""
        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise)
        values = engine.expectation_batch(
            schedules[:3], tfim4, shots=64, max_workers=WORKERS, parallelism="process"
        )
        assert len(values) == 3
        assert all(np.isfinite(v) for v in values)
        engine.close()


class TestStatevectorEngineParity:
    def test_run_and_expectation_across_modes(self, logical_circuits, tfim4):
        engines = {mode: StatevectorEngine(seed=5) for mode in MODES}
        runs = {
            mode: engine.run_batch(logical_circuits, max_workers=WORKERS, parallelism=mode)
            for mode, engine in engines.items()
        }
        for mode in ("thread", "process"):
            for reference, other in zip(runs["serial"], runs[mode]):
                assert np.array_equal(reference.state, other.state)
        values = {
            mode: engine.expectation_batch(
                logical_circuits, tfim4, max_workers=WORKERS, parallelism=mode
            )
            for mode, engine in engines.items()
        }
        assert values["serial"] == values["thread"] == values["process"]
        for engine in engines.values():
            engine.close()

    def test_process_batch_populates_state_cache(self, logical_circuits):
        engine = StatevectorEngine(seed=5)
        engine.run_batch(logical_circuits, max_workers=WORKERS, parallelism="process")
        for circuit in logical_circuits:
            assert engine.run(circuit).from_cache
        # Merged statevectors keep the engine's read-only contract.
        result = engine.run(logical_circuits[0])
        assert not result.state.flags.writeable
        engine.close()


class TestFakeDeviceEngineParity:
    def test_counts_and_expectations_across_modes(self, device, logical_circuits, tfim4):
        measured = [c.copy() for c in logical_circuits]
        for circuit in measured:
            circuit.measure_all()
        engines = {mode: FakeDeviceEngine(device, seed=6, shots=300) for mode in MODES}
        runs = {
            mode: engine.run_batch(measured, max_workers=WORKERS, parallelism=mode)
            for mode, engine in engines.items()
        }
        for mode in ("thread", "process"):
            for reference, other in zip(runs["serial"], runs[mode]):
                assert reference.counts == other.counts
                assert np.array_equal(reference.probabilities, other.probabilities)
        exact = {
            mode: engine.expectation_batch(
                measured, tfim4, shots=None, max_workers=WORKERS, parallelism=mode
            )
            for mode, engine in engines.items()
        }
        assert exact["serial"] == exact["thread"] == exact["process"]
        sampled = {
            mode: engine.expectation_batch(
                measured, tfim4, max_workers=WORKERS, parallelism=mode
            )
            for mode, engine in engines.items()
        }
        assert sampled["serial"] == sampled["thread"] == sampled["process"]
        for engine in engines.values():
            engine.close()

    def test_process_batch_merges_transpile_cache(self, device, logical_circuits):
        measured = [c.copy() for c in logical_circuits]
        for circuit in measured:
            circuit.measure_all()
        engine = FakeDeviceEngine(device, seed=6, shots=100)
        engine.run_batch(measured, max_workers=WORKERS, parallelism="process")
        misses_before = engine.stats.transpile_cache_misses
        engine.run_batch(measured, parallelism="serial")
        # The merged transpilations serve the serial re-run without recompiling.
        assert engine.stats.transpile_cache_misses == misses_before
        engine.close()


# ----------------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------------

class TestPoolLifecycle:
    def test_pool_persists_across_batches_and_close_is_reentrant(
        self, device_noise, sweep_schedules, tfim4
    ):
        _, schedules = sweep_schedules
        engine = NoisyDensityMatrixEngine(device_noise, seed=2)
        engine.expectation_batch(schedules[:3], tfim4, max_workers=WORKERS, parallelism="process")
        (first_pool,) = engine._pools.handles()
        engine.clear_caches()  # must not kill the pool
        engine.expectation_batch(schedules[3:], tfim4, max_workers=WORKERS, parallelism="process")
        assert engine._pools.handles() == [first_pool]
        engine.close()
        assert engine._pools.handles() == []
        engine.close()  # idempotent
        # Engine is usable again after close (a fresh pool spins up).
        values = engine.expectation_batch(
            schedules[:2], tfim4, max_workers=WORKERS, parallelism="process"
        )
        assert len(values) == 2
        engine.close()

    def test_noise_flag_toggle_retires_stale_pool(self, device, sweep_schedules):
        from repro.simulators import NoiseModel

        _, schedules = sweep_schedules
        noise = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise, seed=2)
        engine.run_batch(schedules[:3], max_workers=WORKERS, parallelism="process")
        (first_pool,) = engine._pools.handles()
        noise.include_relaxation = False
        toggled = engine.run_batch(schedules[:3], max_workers=WORKERS, parallelism="process")
        assert engine._pools.handles() != [first_pool]
        fresh = NoisyDensityMatrixEngine(noise, seed=2).run_batch(schedules[:3])
        for a, b in zip(toggled, fresh):
            assert np.array_equal(a.state.data, b.state.data)
        engine.close()


# ----------------------------------------------------------------------------
# Frontend routing
# ----------------------------------------------------------------------------

class TestFrontendRouting:
    def test_estimator_batch_identical_across_tiers(self, device_noise, sweep_schedules, tfim4):
        _, schedules = sweep_schedules
        values = {}
        for mode in MODES:
            estimator = ExpectationEstimator(device_noise, seed=9)
            results = estimator.estimate_batch(
                schedules, tfim4, max_workers=WORKERS, parallelism=mode
            )
            values[mode] = [r.value for r in results]
            estimator.engine.close()
        assert values["serial"] == values["thread"] == values["process"]

    def test_tuner_sweeps_identical_across_tiers(self, device_noise, sweep_schedules, tfim4):
        compiled, _ = sweep_schedules
        budget = TuningBudget(dd_resolution=2, gs_resolution=2, max_windows=3)
        outcomes = {}
        for mode in MODES:
            estimator = ExpectationEstimator(device_noise, seed=9)
            tuner = IndependentWindowTuner(
                objective=lambda s: estimator.estimate(s, tfim4).value,
                budget=budget,
                batch_objective=lambda ss: [
                    r.value
                    for r in estimator.estimate_batch(
                        ss, tfim4, max_workers=WORKERS, parallelism=mode
                    )
                ],
            )
            outcomes[mode] = tuner.tune(compiled.scheduled, compiled.idle_windows)
            estimator.engine.close()
        serial = outcomes["serial"]
        for mode in ("thread", "process"):
            assert outcomes[mode].baseline_value == serial.baseline_value
            assert outcomes[mode].tuned_value == serial.tuned_value
            assert outcomes[mode].num_evaluations == serial.num_evaluations
            assert outcomes[mode].chosen_configurations() == serial.chosen_configurations()

    def test_vaqem_config_validates_parallelism(self):
        with pytest.raises(VAQEMError):
            VAQEMConfig(parallelism="warp")
        assert VAQEMConfig(parallelism="process", max_workers=2).parallelism == "process"

    def test_noisy_objective_factory_accepts_engine_only(self, device, device_noise, tfim4):
        """Injecting an engine without an explicit noise model must adopt the
        engine's model instead of failing the estimator's shared-model check."""
        from repro.vqe import VQE

        ansatz = efficient_su2(4, reps=1, entanglement="linear")
        vqe = VQE(ansatz, tfim4, seed=4)
        engine = NoisyDensityMatrixEngine(device_noise, seed=4)
        objective = vqe.noisy_objective_factory(device, engine=engine)
        value = objective(np.zeros(ansatz.num_parameters))
        assert np.isfinite(value)
        engine.close()

    def test_fake_engine_recompiles_after_context_change(self, device, logical_circuits):
        measured = logical_circuits[0].copy()
        measured.measure_all()
        engine = FakeDeviceEngine(device, seed=3, shots=64)
        alap = engine.transpile(measured)
        engine.scheduling_policy = "asap"
        asap = engine.transpile(measured)
        # A changed compilation context must miss the transpile cache.
        assert engine.stats.transpile_cache_misses == 2
        assert asap is not alap
        engine.close()

    def test_vqe_trajectory_batches_match_pointwise(self, device, device_noise, tfim4):
        from repro.vqe import VQE

        ansatz = efficient_su2(4, reps=1, entanglement="linear")
        vqe = VQE(ansatz, tfim4, seed=4)
        rng = np.random.default_rng(4)
        points = [rng.uniform(-0.5, 0.5, ansatz.num_parameters) for _ in range(3)]
        batched = vqe.evaluate_trajectory_ideal(points)
        assert batched == [vqe.ideal_objective(p) for p in points]
        noisy_serial = vqe.evaluate_trajectory_noisy(points, device)
        noisy_process = vqe.evaluate_trajectory_noisy(
            points, device, max_workers=WORKERS, parallelism="process"
        )
        assert noisy_serial == noisy_process
