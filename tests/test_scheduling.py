"""Tests for ALAP/ASAP scheduling and the ScheduledCircuit container."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import TranspilerError
from repro.transpiler import schedule_circuit, translate_to_basis
from repro.transpiler.scheduling import ScheduledCircuit, TimedInstruction


class TestScheduling:
    def test_unknown_policy(self, device):
        circuit = QuantumCircuit(1)
        with pytest.raises(TranspilerError):
            schedule_circuit(circuit, device, policy="late")

    def test_circuit_wider_than_device(self, device):
        with pytest.raises(TranspilerError):
            schedule_circuit(QuantumCircuit(8), device)

    def test_durations_from_device(self, device):
        circuit = QuantumCircuit(2)
        circuit.sx(0)
        circuit.cx(0, 1)
        scheduled = schedule_circuit(circuit, device)
        durations = {t.name: t.duration_ns for t in scheduled.timed_instructions}
        assert durations["sx"] == pytest.approx(35.56)
        assert durations["cx"] == pytest.approx(device.gate_duration("cx", [0, 1]))

    def test_rz_takes_zero_time(self, device):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.sx(0)
        scheduled = schedule_circuit(circuit, device)
        rz = [t for t in scheduled.timed_instructions if t.name == "rz"][0]
        assert rz.duration_ns == 0.0

    def test_asap_packs_to_the_left(self, device):
        circuit = QuantumCircuit(2)
        circuit.sx(0)
        circuit.cx(0, 1)
        circuit.sx(1)
        scheduled = schedule_circuit(circuit, device, policy="asap")
        first_sx = [t for t in scheduled.timed_instructions if t.name == "sx"][0]
        assert first_sx.start_ns == 0.0

    def test_alap_pushes_single_qubit_gates_late(self, device):
        """ALAP leaves the slack before the gate, ASAP after (the paper's baseline)."""
        circuit = QuantumCircuit(2)
        circuit.sx(1)
        circuit.cx(0, 1)   # long 2q gate on (0,1)
        circuit.sx(0)      # short gate on 0 while qubit 1 is measured later
        circuit.cx(0, 1)
        asap = schedule_circuit(circuit, device, policy="asap")
        alap = schedule_circuit(circuit, device, policy="alap")
        sx_asap = [t for t in asap.timed_instructions if t.name == "sx" and t.qubits == (0,)][0]
        sx_alap = [t for t in alap.timed_instructions if t.name == "sx" and t.qubits == (0,)][0]
        assert sx_alap.start_ns >= sx_asap.start_ns

    def test_same_makespan_for_both_policies(self, device):
        from repro.circuits import efficient_su2

        ansatz = efficient_su2(4, reps=2, entanglement="linear")
        bound = ansatz.bind_parameters([0.3] * ansatz.num_parameters)
        basis = translate_to_basis(bound)
        # Positions (0, 1, 3, 5) form a line on the Casablanca coupling map.
        alap = schedule_circuit(basis, device, physical_qubits=[0, 1, 3, 5])
        asap = schedule_circuit(basis, device, physical_qubits=[0, 1, 3, 5], policy="asap")
        assert alap.duration_ns == pytest.approx(asap.duration_ns)

    def test_no_overlap(self, device, scheduled_su2_4q):
        assert scheduled_su2_4q.scheduled.validate_no_overlap()

    def test_delay_reserves_time_but_is_dropped(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(1000.0, 0)
        circuit.sx(0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        names = [t.name for t in scheduled.timed_instructions]
        assert "delay" not in names
        sx_gates = [t for t in scheduled.timed_instructions if t.name == "sx"]
        gap = sx_gates[1].start_ns - sx_gates[0].end_ns
        assert gap == pytest.approx(1000.0)

    def test_barriers_order_but_take_no_time(self, device):
        circuit = QuantumCircuit(2)
        circuit.sx(0)
        circuit.barrier()
        circuit.sx(1)
        scheduled = schedule_circuit(circuit, device, policy="asap")
        sx1 = [t for t in scheduled.timed_instructions if t.qubits == (1,)][0]
        assert sx1.start_ns >= 35.0

    def test_measurement_duration(self, device):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        measure = scheduled.timed_instructions[0]
        assert measure.duration_ns == pytest.approx(3200.0)


class TestScheduledCircuit:
    def test_physical_qubit_mapping(self, device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        scheduled = schedule_circuit(circuit, device, physical_qubits=[3, 5])
        assert scheduled.physical_qubit(0) == 3
        assert scheduled.physical_qubit(1) == 5

    def test_mismatched_physical_qubits(self, device):
        with pytest.raises(TranspilerError):
            ScheduledCircuit(num_qubits=2, num_clbits=2, device=device, physical_qubits=(0,))

    def test_qubit_runtime_ends_at_measurement(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(500.0, 0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        start, end = scheduled.qubit_runtime(0)
        measure = [t for t in scheduled.timed_instructions if t.name == "measure"][0]
        assert end == pytest.approx(measure.start_ns)
        assert start == pytest.approx(0.0)

    def test_insert_and_remove(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        scheduled = schedule_circuit(circuit, device)
        before = len(scheduled.timed_instructions)
        scheduled.insert(Gate("x", 1), 0, 100.0)
        assert len(scheduled.timed_instructions) == before + 1
        inserted = [t for t in scheduled.timed_instructions if t.name == "x"][0]
        assert inserted.duration_ns == pytest.approx(35.56)
        scheduled.remove(inserted)
        assert len(scheduled.timed_instructions) == before

    def test_replace_shifts_instruction(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        scheduled = schedule_circuit(circuit, device)
        original = scheduled.timed_instructions[0]
        scheduled.replace(original, original.shifted(500.0))
        assert scheduled.timed_instructions[0].start_ns == 500.0

    def test_copy_is_deep_for_instruction_list(self, device, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        copy = scheduled.copy()
        copy.insert(Gate("x", 1), 0, 1.0)
        assert len(copy.timed_instructions) == len(scheduled.timed_instructions) + 1

    def test_count_ops_and_repr(self, device, scheduled_su2_4q):
        scheduled = scheduled_su2_4q.scheduled
        counts = scheduled.count_ops()
        assert counts["cx"] > 0 and counts["measure"] == 4
        assert "ScheduledCircuit" in repr(scheduled)

    def test_measured_positions(self, device, scheduled_su2_4q):
        measured = scheduled_su2_4q.scheduled.measured_positions()
        assert sorted(cl for _, cl in measured) == [0, 1, 2, 3]

    def test_overlap_detection(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        scheduled = schedule_circuit(circuit, device)
        scheduled.insert(Gate("x", 1), 0, 10.0)  # overlaps the sx at t=0..35.56
        assert not scheduled.validate_no_overlap()
