"""Tests for SWAP routing and basis translation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit, efficient_su2
from repro.circuits.gates import standard_gate
from repro.exceptions import TranspilerError
from repro.transpiler import (
    CouplingMap,
    count_added_swaps,
    noise_aware_layout,
    route_circuit,
    single_qubit_sequence,
    translate_to_basis,
    unitaries_equal_up_to_phase,
    zyz_angles,
)

_angle = st.floats(-2 * math.pi, 2 * math.pi, allow_nan=False)


class TestZYZ:
    @settings(max_examples=40, deadline=None)
    @given(theta=_angle, phi=_angle, lam=_angle)
    def test_zyz_reconstruction(self, theta, phi, lam):
        target = standard_gate("u3", theta, phi, lam).matrix()
        t, p, l = zyz_angles(target)
        rebuilt = (
            standard_gate("rz", p).matrix()
            @ standard_gate("ry", t).matrix()
            @ standard_gate("rz", l).matrix()
        )
        assert unitaries_equal_up_to_phase(target, rebuilt)

    def test_zyz_rejects_two_qubit_matrices(self):
        with pytest.raises(TranspilerError):
            zyz_angles(np.eye(4))


class TestSingleQubitSequence:
    @pytest.mark.parametrize("name,params", [
        ("h", ()), ("x", ()), ("y", ()), ("z", ()), ("s", ()), ("t", ()),
        ("rx", (0.7,)), ("ry", (-1.3,)), ("rz", (2.2,)), ("u3", (0.4, 1.5, -0.8)),
    ])
    def test_sequence_reproduces_gate(self, name, params):
        target = standard_gate(name, *params).matrix()
        built = np.eye(2, dtype=complex)
        for gate_name, gate_params in single_qubit_sequence(target):
            built = standard_gate(gate_name, *gate_params).matrix() @ built
        assert unitaries_equal_up_to_phase(target, built)

    def test_identity_collapses_to_nothing(self):
        assert single_qubit_sequence(np.eye(2)) == []

    def test_pure_z_rotation_is_single_rz(self):
        sequence = single_qubit_sequence(standard_gate("rz", 0.4).matrix())
        assert len(sequence) == 1 and sequence[0][0] == "rz"

    def test_uses_only_hardware_basis(self):
        sequence = single_qubit_sequence(standard_gate("u3", 0.3, 0.2, 0.1).matrix())
        assert {name for name, _ in sequence} <= {"rz", "sx", "x"}


class TestBasisTranslation:
    def test_translated_gates_are_native(self, bound_su2_4q):
        translated = translate_to_basis(bound_su2_4q)
        assert set(translated.count_ops()) <= {"rz", "sx", "x", "cx", "measure", "barrier", "delay"}

    def test_unitary_preserved_up_to_phase(self, bound_su2_4q):
        translated = translate_to_basis(bound_su2_4q)
        assert unitaries_equal_up_to_phase(bound_su2_4q.to_unitary(), translated.to_unitary())

    @pytest.mark.parametrize("builder", [
        lambda qc: qc.cz(0, 1),
        lambda qc: qc.swap(0, 1),
        lambda qc: qc.rzz(0.7, 0, 1),
        lambda qc: qc.rxx(0.4, 0, 1),
        lambda qc: qc.cry(1.1, 0, 1),
    ])
    def test_two_qubit_decompositions(self, builder):
        circuit = QuantumCircuit(2)
        circuit.ry(0.3, 0)
        builder(circuit)
        translated = translate_to_basis(circuit)
        assert unitaries_equal_up_to_phase(circuit.to_unitary(), translated.to_unitary())
        assert set(translated.count_ops()) <= {"rz", "sx", "x", "cx"}

    def test_measure_and_delay_pass_through(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.delay(100.0, 0)
        circuit.measure(0, 0)
        translated = translate_to_basis(circuit)
        assert translated.count_ops()["measure"] == 1
        assert translated.count_ops()["delay"] == 1

    def test_unbound_parameters_rejected(self):
        from repro.circuits import Parameter

        circuit = QuantumCircuit(1)
        circuit.ry(Parameter("t"), 0)
        with pytest.raises(TranspilerError):
            translate_to_basis(circuit)


class TestRouting:
    def _route(self, circuit, device, physical=None):
        coupling = CouplingMap.from_device(device)
        layout, active = noise_aware_layout(circuit, device, physical)
        return route_circuit(circuit, coupling, layout, active), active

    def test_adjacent_gates_need_no_swaps(self, device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        (routed, _final), _ = self._route(circuit, device)
        assert count_added_swaps(circuit, routed) == 0

    def test_distant_gates_get_swaps(self, device):
        # A triangle of interactions cannot be embedded in a line of three
        # physical qubits, so at least one CX needs routing.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        (routed, _final), active = self._route(circuit, device, physical=[0, 1, 2])
        assert count_added_swaps(circuit, routed) >= 1

    def test_all_two_qubit_gates_are_adjacent_after_routing(self, device):
        ansatz = efficient_su2(5, reps=2, entanglement="full")
        bound = ansatz.bind_parameters([0.2] * ansatz.num_parameters)
        coupling = CouplingMap.from_device(device)
        layout, active = noise_aware_layout(bound, device)
        routed, _ = route_circuit(bound, coupling, layout, active)
        sub = coupling.subgraph(active)
        for inst in routed.instructions:
            if len(inst.qubits) == 2:
                assert sub.are_adjacent(*inst.qubits)

    def test_measurements_follow_the_routed_qubit(self, device):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.cx(0, 2)
        circuit.measure(0, 0)
        circuit.measure(1, 1)
        circuit.measure(2, 2)
        (routed, final_layout), active = self._route(circuit, device, physical=[0, 1, 2])
        # X on logical 0 and CX(0, 2) leave the logical state |101>; the routed
        # circuit must still deliver that pattern into clbits (0, 1, 2).
        from repro.simulators import StatevectorSimulator

        sim = StatevectorSimulator(seed=0)
        counts = sim.counts(routed, shots=64)
        assert set(counts) == {"101"}

    def test_routing_preserves_distribution(self, device):
        """Routed execution gives the same measured distribution as the logical circuit."""
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 2)
        circuit.ry(0.6, 1)
        circuit.cx(1, 2)
        circuit.measure_all()
        from repro.simulators import StatevectorSimulator

        logical = StatevectorSimulator(seed=1).probabilities(circuit.remove_final_measurements())
        (routed, _), active = self._route(circuit, device, physical=[0, 1, 2])
        counts = StatevectorSimulator(seed=1).counts(routed, shots=20000)
        measured = np.zeros(8)
        for key, value in counts.items():
            measured[int(key, 2)] = value / 20000
        assert np.allclose(measured, logical, atol=0.02)
