"""Integration tests for the VAQEM pipeline (reduced budgets, small problems)."""

import numpy as np
import pytest

from repro.backends import fake_casablanca
from repro.circuits import efficient_su2
from repro.exceptions import VAQEMError
from repro.operators import tfim_hamiltonian
from repro.vaqem import STANDARD_STRATEGIES, TuningBudget, VAQEMConfig, VAQEMPipeline
from repro.vqe import VQAApplication


@pytest.fixture(scope="module")
def small_application():
    """A 3-qubit TFIM problem that keeps the end-to-end flow fast."""
    return VQAApplication(
        name="TFIM_3q_test",
        ansatz=efficient_su2(3, reps=1, entanglement="linear", name="tfim3_test"),
        hamiltonian=tfim_hamiltonian(3, periodic=False),
        device_factory=fake_casablanca,
        uses_runtime=False,
    )


@pytest.fixture(scope="module")
def pipeline(small_application):
    config = VAQEMConfig(
        angle_tuning_iterations=80,
        budget=TuningBudget(dd_resolution=3, gs_resolution=3, max_windows=4),
        seed=5,
    )
    return VAQEMPipeline(small_application, config)


@pytest.fixture(scope="module")
def run_result(pipeline):
    return pipeline.run(strategies=("no_em", "mem", "dd_xy4", "vaqem_gs_xy"))


class TestAngleTuning:
    def test_angle_tuning_approaches_ground_energy(self, pipeline, small_application):
        result = pipeline.angle_result
        e0 = small_application.exact_ground_energy()
        assert result.optimal_value >= e0 - 1e-9
        assert result.optimal_value <= 0.85 * e0  # recovers at least 85 % of the optimum

    def test_runtime_mode_uses_spsa_only(self, small_application):
        config = VAQEMConfig(angle_tuning_iterations=2, seed=1)
        pipeline = VAQEMPipeline(small_application, config)
        result = pipeline.tune_angles(mode="runtime")
        assert result.execution_mode == "runtime"

    def test_unknown_mode_rejected(self, pipeline):
        with pytest.raises(VAQEMError):
            pipeline.tune_angles(mode="magic")


class TestCompilation:
    def test_compile_produces_windows(self, pipeline):
        compiled = pipeline.compile()
        assert compiled.cx_depth > 0
        assert len(pipeline.idle_windows()) == compiled.num_idle_windows

    def test_compile_is_cached(self, pipeline):
        assert pipeline.compile() is pipeline.compile()


class TestStrategies:
    def test_unknown_strategy_rejected(self, pipeline):
        with pytest.raises(VAQEMError):
            pipeline.evaluate_strategy("quantum_magic")

    def test_standard_strategy_names(self):
        assert "vaqem_gs_xy" in STANDARD_STRATEGIES
        assert STANDARD_STRATEGIES[0] == "no_em"

    def test_all_energies_respect_soundness(self, run_result, small_application):
        e0 = small_application.exact_ground_energy()
        tolerance = 0.02 * abs(e0) + 1e-6
        for energy in run_result.energies.values():
            assert energy >= e0 - tolerance

    def test_vaqem_never_worse_than_mem_baseline(self, run_result):
        assert run_result.energies["vaqem_gs_xy"] <= run_result.energies["mem"] + 1e-9

    def test_improvement_metric_consistency(self, run_result):
        improvement = run_result.improvement("vaqem_gs_xy")
        assert improvement >= 1.0 - 1e-9

    def test_tuning_results_recorded_for_vaqem_strategies(self, run_result):
        assert "vaqem_gs_xy" in run_result.tuning_results
        tuning = run_result.tuning_results["vaqem_gs_xy"]
        assert tuning.num_evaluations == run_result.evaluation_counts["vaqem_gs_xy"]

    def test_application_result_conversion(self, run_result):
        converted = run_result.to_application_result()
        assert converted.application == "TFIM_3q_test"
        assert set(converted.strategies()) == set(run_result.energies)

    def test_mem_baseline_is_not_catastrophically_bad(self, run_result, small_application):
        fraction = run_result.energies["mem"] / small_application.exact_ground_energy()
        assert 0.0 < fraction <= 1.0
