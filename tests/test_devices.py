"""Tests for device models, fake devices and calibration drift."""

import math

import numpy as np
import pytest

from repro.backends import (
    CalibrationDrift,
    DeviceModel,
    GateProperties,
    QubitProperties,
    available_devices,
    fake_casablanca,
    fake_guadalupe,
    fake_jakarta,
    fake_montreal,
    get_device,
)
from repro.exceptions import BackendError


class TestQubitProperties:
    def test_t2_bounded_by_twice_t1(self):
        with pytest.raises(BackendError):
            QubitProperties(t1_ns=100.0, t2_ns=300.0, readout_error_01=0.01, readout_error_10=0.01)

    def test_negative_times_rejected(self):
        with pytest.raises(BackendError):
            QubitProperties(t1_ns=-1.0, t2_ns=1.0, readout_error_01=0.01, readout_error_10=0.01)

    def test_readout_error_range(self):
        with pytest.raises(BackendError):
            QubitProperties(t1_ns=1e5, t2_ns=1e5, readout_error_01=0.7, readout_error_10=0.01)

    def test_pure_dephasing_time(self):
        props = QubitProperties(t1_ns=100e3, t2_ns=100e3, readout_error_01=0.01, readout_error_10=0.01)
        # 1/Tphi = 1/T2 - 1/(2 T1) = 1/(2 T1) here.
        assert props.t_phi_ns == pytest.approx(200e3)

    def test_t1_limited_qubit_has_infinite_tphi(self):
        props = QubitProperties(t1_ns=100e3, t2_ns=199e3, readout_error_01=0.01, readout_error_10=0.01)
        assert props.t_phi_ns > 1e7

    def test_integrated_detuning_static(self):
        props = QubitProperties(
            t1_ns=1e5, t2_ns=1e5, readout_error_01=0.01, readout_error_10=0.01,
            static_detuning=1e-3,
        )
        assert props.integrated_detuning(0.0, 1000.0) == pytest.approx(1.0)

    def test_integrated_detuning_matches_numeric_integral(self):
        props = QubitProperties(
            t1_ns=1e5, t2_ns=1e5, readout_error_01=0.01, readout_error_10=0.01,
            static_detuning=5e-4, drift_amplitude=3e-4, drift_period_ns=20000.0, drift_phase=0.3,
        )
        start, end = 100.0, 9100.0
        grid = np.linspace(start, end, 20001)
        numeric = np.trapezoid([props.detuning_at(t) for t in grid], grid)
        assert props.integrated_detuning(start, end) == pytest.approx(numeric, rel=1e-4)

    def test_integrated_detuning_empty_interval(self):
        props = QubitProperties(t1_ns=1e5, t2_ns=1e5, readout_error_01=0.01, readout_error_10=0.01)
        assert props.integrated_detuning(50.0, 50.0) == 0.0


class TestDeviceModel:
    def test_fake_casablanca_shape(self, device):
        assert device.num_qubits == 7
        assert len(device.coupling_edges) == 6

    def test_neighbors(self, device):
        assert 1 in device.neighbors(0)
        assert device.is_coupled(1, 3)
        assert not device.is_coupled(0, 6)

    def test_gate_duration_lookup(self, device):
        assert device.gate_duration("sx", [0]) == pytest.approx(35.56)
        assert device.gate_duration("rz", [0]) == 0.0
        assert device.gate_duration("cx", [0, 1]) > 100.0
        assert device.gate_duration("measure", [0]) == pytest.approx(3200.0)

    def test_swap_is_three_cx(self, device):
        assert device.gate_duration("swap", [0, 1]) == pytest.approx(3 * device.gate_duration("cx", [0, 1]))

    def test_missing_two_qubit_gate(self, device):
        with pytest.raises(BackendError):
            device.gate_duration("cx", [0, 6])

    def test_gate_error_lookup(self, device):
        assert 0 < device.gate_error("cx", [0, 1]) < 0.05
        assert device.gate_error("rz", [0]) == 0.0
        assert 0 < device.gate_error("measure", [0]) < 0.1

    def test_readout_confusion_columns_sum_to_one(self, device):
        for q in range(device.num_qubits):
            matrix = device.readout_confusion_matrix(q)
            assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_qubit_quality_positive(self, device):
        assert all(device.qubit_quality(q) > 0 for q in range(device.num_qubits))

    def test_best_qubits_sorted_by_quality(self, device):
        best = device.best_qubits(3)
        qualities = [device.qubit_quality(q) for q in best]
        assert qualities == sorted(qualities, reverse=True)

    def test_best_qubits_too_many(self, device):
        with pytest.raises(BackendError):
            device.best_qubits(10)

    def test_invalid_coupling_edge(self):
        qubit = QubitProperties(t1_ns=1e5, t2_ns=1e5, readout_error_01=0.01, readout_error_10=0.01)
        with pytest.raises(BackendError):
            DeviceModel(
                name="bad", num_qubits=2, coupling_edges=[(0, 5)],
                qubit_properties=[qubit, qubit],
                single_qubit_gate=GateProperties(35.0, 1e-4),
                two_qubit_gates={},
            )


class TestFakeDevices:
    @pytest.mark.parametrize("factory,size", [
        (fake_casablanca, 7), (fake_jakarta, 7), (fake_guadalupe, 16), (fake_montreal, 27),
    ])
    def test_sizes(self, factory, size):
        assert factory().num_qubits == size

    def test_deterministic(self):
        a, b = fake_casablanca(), fake_casablanca()
        assert a.qubits[0].t1_ns == b.qubits[0].t1_ns
        assert a.qubits[3].static_detuning == b.qubits[3].static_detuning

    def test_different_seed_changes_calibration(self):
        assert fake_casablanca(seed=1).qubits[0].t1_ns != fake_casablanca(seed=2).qubits[0].t1_ns

    def test_every_qubit_has_nonzero_detuning(self, device):
        assert all(abs(q.static_detuning) > 0 for q in device.qubits)

    def test_every_edge_has_cx_calibration(self, device):
        for a, b in device.coupling_edges:
            assert device.gate_duration("cx", [a, b]) > 0

    def test_registry_accepts_paper_names(self):
        assert get_device("ibmq_casablanca").num_qubits == 7
        assert get_device("FAKE_MONTREAL").num_qubits == 27

    def test_registry_unknown(self):
        with pytest.raises(BackendError):
            get_device("ibmq_tokyo")

    def test_available_devices_list(self):
        names = available_devices()
        assert "fake_casablanca" in names and len(names) == 4


class TestCalibrationDrift:
    def test_snapshot_at_time_zero_matches_base(self, device):
        drift = CalibrationDrift(device, seed=1)
        snap = drift.snapshot(0.0)
        assert snap.qubits[0].static_detuning == pytest.approx(device.qubits[0].static_detuning)
        assert snap.qubits[0].t1_ns == pytest.approx(device.qubits[0].t1_ns)

    def test_snapshots_are_deterministic(self, device):
        drift = CalibrationDrift(device, seed=1)
        a = drift.snapshot(5.0)
        b = drift.snapshot(5.0)
        assert a.qubits[2].static_detuning == b.qubits[2].static_detuning

    def test_detuning_drifts_within_cycle(self, device):
        drift = CalibrationDrift(device, seed=1)
        later = drift.snapshot(6.0)
        assert later.qubits[0].static_detuning != device.qubits[0].static_detuning

    def test_recalibration_changes_distribution(self, device):
        drift = CalibrationDrift(device, calibration_period_hours=12.0, seed=1)
        before = drift.snapshot(11.0)
        after = drift.snapshot(13.0)
        assert drift.calibration_cycle(11.0) == 0
        assert drift.calibration_cycle(13.0) == 1
        assert before.qubits[0].static_detuning != after.qubits[0].static_detuning

    def test_snapshots_remain_physical(self, device):
        drift = CalibrationDrift(device, seed=3)
        for snap in drift.timeline(24.0, step_hours=6.0):
            for q in snap.qubits:
                assert q.t2_ns <= 2 * q.t1_ns + 1e-6
                assert 0 <= q.readout_error_01 < 0.5

    def test_timeline_length(self, device):
        drift = CalibrationDrift(device, seed=3)
        assert len(drift.timeline(24.0, step_hours=1.0)) == 25
