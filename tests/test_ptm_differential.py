"""Randomized differential tests: dense kernel versus PTM kernel.

The PTM backend is a different numerical pipeline — real Pauli vectors, fused
composed kernels, Walsh-Hadamard probability extraction — so its contract
against the dense kernel is *float tolerance* (``<= 1e-9``, in practice
~1e-15), while everything *within* the PTM kernel keeps the engine's usual
bit-exactness guarantees.  ~50 seeded random schedules
(``tests/randomized.py``; reproduce any failure from its seed) drive both
claims:

* dense and PTM engines agree on expectations, probabilities and
  density matrices to ``<= 1e-9`` on every schedule;
* PTM results are identical across the serial, thread and process tiers, and
  the serial tier's batched measurement fast path equals sequential
  per-item calls bit for bit;
* a warm PTM engine resuming from checkpoints is bit-identical to a cold
  one (fusion never crosses the stride grid, and the engine aligns its
  checkpoint depths to it);
* the fusion/batch counters are a pure function of the submitted work;
* the kernel is part of the noise key: process pools and caches never serve
  one kernel's state to the other.
"""

from __future__ import annotations

import numpy as np
import pytest

import randomized
from repro.engine import FakeDeviceEngine, NoisyDensityMatrixEngine
from repro.operators import tfim_hamiltonian
from repro.simulators import NoiseModel

ATOL = 1e-9

PARITY_SEEDS = randomized.fuzz_seeds(20, offset=600)
TIER_SEEDS = randomized.fuzz_seeds(12, offset=700)
RESUME_SEEDS = randomized.fuzz_seeds(6, offset=800)
SAMPLING_SEEDS = randomized.fuzz_seeds(8, offset=850)


@pytest.fixture(scope="module")
def device():
    return randomized.fuzz_device()


@pytest.fixture(scope="module")
def noise(device):
    return NoiseModel.from_device(device)


@pytest.fixture(scope="module")
def observable():
    return tfim_hamiltonian(4)


def engines(noise, seed=7):
    return (
        NoisyDensityMatrixEngine(noise, seed=seed, kernel="dense"),
        NoisyDensityMatrixEngine(noise, seed=seed, kernel="ptm"),
    )


class TestKernelParity:
    def test_expectations_within_tolerance(self, device, noise, observable):
        dense, ptm = engines(noise)
        for seed in PARITY_SEEDS:
            scheduled = randomized.random_schedule(seed, device=device)
            a = dense.expectation(scheduled, observable)
            b = ptm.expectation(scheduled, observable)
            assert abs(a - b) <= ATOL, f"seed {seed}: {a} vs {b}"

    def test_probabilities_within_tolerance(self, device, noise):
        dense, ptm = engines(noise)
        for seed in PARITY_SEEDS[:8]:
            scheduled = randomized.random_schedule(seed, device=device)
            expected, expected_clbits = dense.measured_probabilities(scheduled)
            probabilities, clbits = ptm.measured_probabilities(scheduled)
            assert clbits == expected_clbits
            np.testing.assert_allclose(probabilities, expected, atol=ATOL)

    def test_density_matrices_within_tolerance(self, device, noise):
        dense, ptm = engines(noise)
        for seed in PARITY_SEEDS[:6]:
            scheduled = randomized.random_schedule(seed, device=device)
            np.testing.assert_allclose(
                ptm.density_matrix(scheduled).data,
                dense.density_matrix(scheduled).data,
                atol=ATOL,
            )

    def test_fake_device_engine_honours_kernel(self, device, observable):
        dense = FakeDeviceEngine(device, seed=9, kernel="dense")
        ptm = FakeDeviceEngine(device, seed=9, kernel="ptm")
        assert ptm.kernel == "ptm"
        for seed in PARITY_SEEDS[:4]:
            circuit = randomized.random_circuit(seed)
            a = dense.expectation(circuit, observable, shots=None)
            b = ptm.expectation(circuit, observable, shots=None)
            assert abs(a - b) <= ATOL, f"seed {seed}"


class TestPtmTierExactness:
    def test_expectations_identical_across_tiers(self, device, noise, observable):
        schedules = [
            randomized.random_schedule(seed, device=device) for seed in TIER_SEEDS
        ]
        dense_values = NoisyDensityMatrixEngine(
            noise, seed=11, kernel="dense"
        ).expectation_batch(schedules, observable)
        values = {}
        for tier in ("serial", "thread", "process"):
            engine = NoisyDensityMatrixEngine(noise, seed=11, kernel="ptm")
            try:
                values[tier] = engine.expectation_batch(
                    schedules, observable, parallelism=tier, max_workers=2
                )
            finally:
                engine.close()
        assert values["serial"] == values["thread"] == values["process"]
        for a, b in zip(values["serial"], dense_values):
            assert abs(a - b) <= ATOL

    def test_batched_fast_path_equals_sequential(self, device, noise, observable):
        """The serial tier's stacked-measurement fast path must be value-
        identical to per-item calls — bit for bit, not just close."""
        schedules = [
            randomized.random_schedule(seed, device=device) for seed in TIER_SEEDS[:6]
        ]
        batched_engine = NoisyDensityMatrixEngine(noise, seed=11, kernel="ptm")
        batched = batched_engine.expectation_batch(schedules, observable)
        sequential_engine = NoisyDensityMatrixEngine(noise, seed=11, kernel="ptm")
        sequential = [
            sequential_engine.expectation(item, observable) for item in schedules
        ]
        assert batched == sequential
        assert batched_engine.stats.batch_width >= 2

    def test_sampled_expectations_identical_across_tiers(self, device, noise, observable):
        schedules = [
            randomized.random_schedule(seed, device=device)
            for seed in SAMPLING_SEEDS[:4]
        ]
        per_tier = {}
        for tier in ("serial", "thread"):
            engine = NoisyDensityMatrixEngine(noise, seed=23, kernel="ptm")
            try:
                per_tier[tier] = engine.expectation_batch(
                    schedules, observable, shots=256, parallelism=tier, max_workers=2
                )
            finally:
                engine.close()
        assert per_tier["serial"] == per_tier["thread"]

    def test_seeded_sampling_deterministic(self, device, noise):
        for seed in SAMPLING_SEEDS[:4]:
            scheduled = randomized.random_schedule(seed, device=device)
            a = NoisyDensityMatrixEngine(noise, seed=4, kernel="ptm").counts(
                scheduled, shots=256
            )
            b = NoisyDensityMatrixEngine(noise, seed=4, kernel="ptm").counts(
                scheduled, shots=256
            )
            assert a == b, f"seed {seed}"
            assert sum(a.values()) == 256


class TestPtmWarmResume:
    def test_warm_engine_matches_cold_runs(self, device, noise):
        """Resumed fused evolution is bit-identical to cold evolution: the
        fusion stride pins the composed-kernel sequence to content alone."""
        warm = NoisyDensityMatrixEngine(noise, seed=3, kernel="ptm")
        dense = NoisyDensityMatrixEngine(noise, seed=3, kernel="dense")
        resumes = 0
        for seed in RESUME_SEEDS:
            compiled = randomized.random_compiled(seed, device=device)
            family = randomized.schedule_family(compiled, seed)
            warm_states = [warm.run(item).state.data for item in family]
            resumes += warm.stats.prefix_resumes
            for item, warm_state in zip(family, warm_states):
                cold = NoisyDensityMatrixEngine(noise, seed=3, kernel="ptm")
                assert np.array_equal(cold.run(item).state.data, warm_state), (
                    f"seed {seed}"
                )
                np.testing.assert_allclose(
                    warm.density_matrix(item).data,
                    dense.density_matrix(item).data,
                    atol=ATOL,
                )
        assert resumes > 0

    def test_checkpoint_interval_is_stride_aligned(self, noise):
        from repro.simulators.ptm import PauliVectorState, PTMEvolver

        engine = NoisyDensityMatrixEngine(noise, kernel="ptm")
        state_bytes = PauliVectorState(4).nbytes
        for depth in (1, 7, 8, 23, 100, 400):
            interval = engine._checkpoint_interval(depth, state_bytes)
            assert interval % PTMEvolver.fusion_stride == 0


class TestCounterDeterminism:
    def test_counters_pure_function_of_work(self, device, noise, observable):
        schedules = [
            randomized.random_schedule(seed, device=device) for seed in TIER_SEEDS[:6]
        ]

        def stats_after_batch():
            engine = NoisyDensityMatrixEngine(noise, seed=11, kernel="ptm")
            engine.expectation_batch(schedules, observable)
            snapshot = engine.stats.as_dict()
            return (
                snapshot["ptm_matmuls"],
                snapshot["instructions_fused"],
                snapshot["batch_width"],
            )

        first = stats_after_batch()
        second = stats_after_batch()
        assert first == second
        matmuls, fused, batch_width = first
        assert matmuls > 0 and fused > 0
        # The fast path stacks per (size, measured-positions) bucket, so the
        # high-water mark is at least 2 (some schedules share a bucket) and at
        # most the batch size.
        assert 2 <= batch_width <= len(schedules)

    def test_resume_never_double_counts(self, device, noise):
        """Warm and cold engines report identical kernel counts for the same
        family: snapshot cursors restart their counters from zero."""
        for seed in RESUME_SEEDS[:2]:
            compiled = randomized.random_compiled(seed, device=device)
            family = randomized.schedule_family(compiled, seed)
            warm = NoisyDensityMatrixEngine(noise, seed=3, kernel="ptm")
            for item in family:
                warm.run(item)
            assert warm.stats.prefix_resumes > 0
            total = 0
            for item in family:
                cold = NoisyDensityMatrixEngine(noise, seed=3, kernel="ptm")
                cold.run(item)
                total += cold.stats.ptm_matmuls
            # The warm engine resumes from mid-schedule checkpoints, so it
            # must do *at most* the cold engines' work, never more.
            assert warm.stats.ptm_matmuls <= total

    def test_dense_kernel_reports_no_ptm_counters(self, device, noise, observable):
        engine = NoisyDensityMatrixEngine(noise, seed=11, kernel="dense")
        schedules = [
            randomized.random_schedule(seed, device=device) for seed in TIER_SEEDS[:3]
        ]
        engine.expectation_batch(schedules, observable)
        assert engine.stats.ptm_matmuls == 0
        assert engine.stats.instructions_fused == 0
        assert engine.stats.batch_width == 0


class TestKernelIsolation:
    def test_kernel_salts_noise_key(self, noise):
        dense, ptm = engines(noise)
        assert dense._noise_key() != ptm._noise_key()

    def test_invalid_kernel_rejected(self, noise):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError):
            NoisyDensityMatrixEngine(noise, kernel="sparse")

    def test_env_var_selects_default_kernel(self, noise, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_KERNEL", "ptm")
        assert NoisyDensityMatrixEngine(noise).kernel == "ptm"
        monkeypatch.delenv("REPRO_ENGINE_KERNEL")
        assert NoisyDensityMatrixEngine(noise).kernel == "dense"

    def test_noise_toggle_retires_ptm_pool(self, device, observable):
        """Process pools are keyed on the noise key (which includes the
        kernel); flag toggles retire them on the PTM kernel exactly as on the
        dense one (see test_parallel.py)."""
        noise = NoiseModel.from_device(device)
        schedules = [
            randomized.random_schedule(seed, device=device) for seed in TIER_SEEDS[:3]
        ]
        engine = NoisyDensityMatrixEngine(noise, seed=2, kernel="ptm")
        try:
            engine.expectation_batch(
                schedules, observable, max_workers=2, parallelism="process"
            )
            (first_pool,) = engine._pools.handles()
            noise.include_relaxation = False
            toggled = engine.expectation_batch(
                schedules, observable, max_workers=2, parallelism="process"
            )
            assert engine._pools.handles() != [first_pool]
            fresh = NoisyDensityMatrixEngine(
                noise, seed=2, kernel="ptm"
            ).expectation_batch(schedules, observable)
            assert toggled == fresh
        finally:
            engine.close()
