"""Property tests for commutation-aware schedule canonicalisation.

The canonical order (:mod:`repro.engine.canonical`) must be a pure function
of schedule content: idempotent, invariant under every benign permutation of
the instruction list, model-equivalent to the time-sorted order it replaces,
and conservative — provably non-commuting pairs must never swap.  Random
instances come from the shared seeded generator (``tests/randomized.py``;
see ``docs/testing.md`` for how to reproduce a failing seed).
"""

from __future__ import annotations

import numpy as np
import pytest

import randomized
from repro.backends import fake_casablanca
from repro.circuits.circuit import Instruction
from repro.circuits.gates import Barrier, standard_gate
from repro.engine import NoisyDensityMatrixEngine
from repro.engine.canonical import (
    canonical_order,
    commutation_dag,
    commutes,
    instruction_footprints,
)
from repro.engine.fingerprint import schedule_fingerprint, timed_instruction_token
from repro.simulators import NoiseModel
from repro.simulators.noisy_simulator import NoisySimulator
from repro.transpiler.scheduling import ScheduledCircuit, TimedInstruction

SEEDS = randomized.fuzz_seeds(6)


def tokens(ordered):
    return [timed_instruction_token(timed) for timed in ordered]


@pytest.fixture(scope="module")
def compiled_cases():
    device = randomized.fuzz_device()
    return [randomized.random_compiled(seed, device=device) for seed in SEEDS]


def _timed(name, qubits, start, duration, params=(), clbits=()):
    if name == "barrier":
        gate = Barrier(len(qubits) or 1)
    else:
        gate = standard_gate(name, *params) if params else standard_gate(name)
    return TimedInstruction(Instruction(gate, tuple(qubits), tuple(clbits)), start, duration)


def _schedule(device, num_qubits, instructions):
    return ScheduledCircuit(
        num_qubits=num_qubits,
        num_clbits=num_qubits,
        device=device,
        physical_qubits=tuple(range(num_qubits)),
        timed_instructions=list(instructions),
        name="hand_built",
    )


class TestCanonicalOrderProperties:
    def test_idempotent(self, compiled_cases):
        """Re-canonicalising a schedule whose list already is the canonical
        order returns the identical sequence."""
        for compiled in compiled_cases:
            first = canonical_order(compiled.scheduled)
            fixed_point = compiled.scheduled.copy()
            fixed_point.timed_instructions = list(first)
            assert tokens(canonical_order(fixed_point)) == tokens(first)

    def test_invariant_under_benign_permutations(self, compiled_cases):
        for compiled in compiled_cases:
            reference = tokens(canonical_order(compiled.scheduled))
            for permutation_seed in range(4):
                variant = randomized.benign_permutation(
                    compiled.scheduled, permutation_seed
                )
                assert tokens(canonical_order(variant)) == reference

    def test_permutation_preserves_fingerprint_and_chain(self, compiled_cases):
        for compiled in compiled_cases:
            reference = schedule_fingerprint(compiled.scheduled)
            variant = randomized.benign_permutation(compiled.scheduled, 3)
            assert schedule_fingerprint(variant) == reference
            # The plain time-sorted digest is what used to key the caches;
            # it still tells permuted lists apart, which is exactly the
            # sharing canonicalisation recovers.
            assert schedule_fingerprint(variant, canonical=False) != (
                schedule_fingerprint(compiled.scheduled, canonical=False)
            ) or tokens(variant.sorted_instructions()) == tokens(
                compiled.scheduled.sorted_instructions()
            )

    def test_same_multiset_of_instructions(self, compiled_cases):
        for compiled in compiled_cases:
            assert sorted(tokens(canonical_order(compiled.scheduled))) == sorted(
                tokens(compiled.scheduled.sorted_instructions())
            )

    def test_per_qubit_subsequences_preserved(self, compiled_cases):
        """Reordering a qubit's own instruction line is only allowed inside
        provably-commuting diagonal runs (same start, zero duration)."""
        from repro.engine.canonical import DIAGONAL_GATES

        def normalised_line(instructions, position):
            line = [t for t in instructions if position in t.qubits]
            out, block, block_key = [], [], None
            for timed in line:
                key = (timed.start_ns, timed.duration_ns)
                exchangeable = timed.name in DIAGONAL_GATES and timed.duration_ns == 0.0
                if exchangeable and key == block_key:
                    block.append(timed)
                    continue
                out.extend(sorted(timed_instruction_token(t) for t in block))
                block, block_key = ([timed], key) if exchangeable else ([], None)
                if not exchangeable:
                    out.append(timed_instruction_token(timed))
            out.extend(sorted(timed_instruction_token(t) for t in block))
            return out

        for compiled in compiled_cases:
            scheduled = compiled.scheduled
            exact = scheduled.sorted_instructions()
            canon = canonical_order(scheduled)
            for position in range(scheduled.num_qubits):
                assert normalised_line(exact, position) == normalised_line(canon, position)


class TestModelEquivalence:
    def test_canonical_execution_matches_time_order(self, compiled_cases):
        """Canonical and time-sorted processing are the same quantum channel
        (equal up to float rounding; bit-identity is deliberately not claimed
        between the two *orders* — it holds within each)."""
        device = randomized.fuzz_device()
        noise = NoiseModel.from_device(device)
        canonical_sim = NoisySimulator(noise, canonical_order=True)
        legacy_sim = NoisySimulator(noise, canonical_order=False)
        for compiled in compiled_cases[:3]:
            a = canonical_sim.run(compiled.scheduled)
            b = legacy_sim.run(compiled.scheduled)
            np.testing.assert_allclose(a.data, b.data, atol=1e-10)

    def test_variant_family_states_bit_identical(self, compiled_cases):
        """A benign permutation is *bit-identical* under canonical execution:
        both orders canonicalise to the same instruction sequence."""
        device = randomized.fuzz_device()
        noise = NoiseModel.from_device(device)
        simulator = NoisySimulator(noise)
        for compiled in compiled_cases[:3]:
            reference = simulator.run(compiled.scheduled)
            variant = randomized.benign_permutation(compiled.scheduled, 11)
            assert np.array_equal(simulator.run(variant).data, reference.data)


class TestCommutationRules:
    def test_non_commuting_same_qubit_pair_not_reordered(self):
        """A zero-duration rz and the sx starting at the same instant on the
        same qubit must keep their list order — in both list orders."""
        device = fake_casablanca()
        rz = _timed("rz", (0,), 100.0, 0.0, params=(0.5,))
        sx = _timed("sx", (0,), 100.0, 35.0)
        lead_in = _timed("sx", (0,), 0.0, 35.0)
        for pair in ((rz, sx), (sx, rz)):
            scheduled = _schedule(device, 2, [lead_in, *pair])
            ordered = canonical_order(scheduled)
            assert tokens(ordered) == tokens([lead_in, *pair])

    def test_diagonal_zero_duration_run_is_reordered(self):
        """Two same-start zero-duration rz gates on one qubit are provably
        commuting; both list orders canonicalise identically.  They start
        flush against the lead-in gate: a non-empty idle gap would carry a
        crosstalk partner on this device, which (correctly) disables the
        exemption — covered by the case below."""
        device = fake_casablanca()
        rz_a = _timed("rz", (0,), 35.0, 0.0, params=(0.25,))
        rz_b = _timed("rz", (0,), 35.0, 0.0, params=(0.75,))
        lead_in = _timed("sx", (0,), 0.0, 35.0)
        one = canonical_order(_schedule(device, 2, [lead_in, rz_a, rz_b]))
        two = canonical_order(_schedule(device, 2, [lead_in, rz_b, rz_a]))
        assert tokens(one) == tokens(two)
        assert tokens(one)[1:] == sorted(tokens(one)[1:])

    def test_diagonal_run_with_crosstalk_gap_not_reordered(self):
        """The same diagonal pair behind a crosstalk-carrying idle gap keeps
        its list order: whichever member is processed first applies the ZZ
        channel, so the swap would be observable."""
        device = fake_casablanca()
        rz_a = _timed("rz", (0,), 300.0, 0.0, params=(0.25,))
        rz_b = _timed("rz", (0,), 300.0, 0.0, params=(0.75,))
        lead_in = _timed("sx", (0,), 0.0, 35.0)
        one = canonical_order(_schedule(device, 2, [lead_in, rz_a, rz_b]))
        two = canonical_order(_schedule(device, 2, [lead_in, rz_b, rz_a]))
        assert tokens(one) == tokens([lead_in, rz_a, rz_b])
        assert tokens(two) == tokens([lead_in, rz_b, rz_a])

    def test_zz_coupled_pair_not_commuting(self):
        """An instruction whose idle gap crosstalk-couples to a neighbour
        does not commute with that neighbour's instructions."""
        device = fake_casablanca()  # qubits 0-1 coupled with nonzero ZZ
        idle_then_gate = _timed("sx", (0,), 500.0, 35.0)
        lead_in = _timed("sx", (0,), 0.0, 35.0)
        neighbor_gate = _timed("sx", (1,), 200.0, 35.0)
        scheduled = _schedule(device, 2, [lead_in, neighbor_gate, idle_then_gate])
        ordered = scheduled.sorted_instructions()
        footprints = instruction_footprints(scheduled, ordered)
        # Qubit 0 idles 35..500 while qubit 1 is idle through most of that
        # gap, so the gap applies a ZZ channel touching position 1.
        assert footprints[2] == frozenset({0, 1})
        assert not commutes(ordered[1], ordered[2], footprints[1], footprints[2])
        assert tokens(canonical_order(scheduled)) == tokens(ordered)

    def test_disjoint_footprints_commute(self):
        device = fake_casablanca()
        a = _timed("sx", (0,), 0.0, 35.0)
        b = _timed("sx", (2,), 0.0, 35.0)
        scheduled = _schedule(device, 3, [a, b])
        ordered = scheduled.sorted_instructions()
        footprints = instruction_footprints(scheduled, ordered)
        assert commutes(ordered[0], ordered[1], footprints[0], footprints[1])

    def test_barrier_blocks_everything(self):
        device = fake_casablanca()
        gate = _timed("sx", (0,), 0.0, 35.0)
        barrier = _timed("barrier", (), 50.0, 0.0)
        late = _timed("sx", (1,), 100.0, 35.0)
        scheduled = _schedule(device, 2, [gate, barrier, late])
        ordered = scheduled.sorted_instructions()
        footprints = instruction_footprints(scheduled, ordered)
        assert footprints[1] == frozenset({0, 1})
        pred_counts, successors = commutation_dag(scheduled, ordered, footprints)
        assert pred_counts[2] >= 1 and 2 in successors[1]


class TestEngineIntegration:
    def test_canonicalisation_flag_salts_cache_keys(self):
        device = randomized.fuzz_device()
        scheduled = randomized.random_schedule(2001, device=device)
        noise = NoiseModel.from_device(device)
        on = NoisyDensityMatrixEngine(noise, seed=1)
        off = NoisyDensityMatrixEngine(noise, seed=1, enable_canonicalisation=False)
        assert on._chain(scheduled)[1][-1] != off._chain(scheduled)[1][-1]
        assert on.enable_canonicalisation and not off.enable_canonicalisation

    def test_permuted_schedule_hits_the_result_cache(self):
        device = randomized.fuzz_device()
        scheduled = randomized.random_schedule(2002, device=device)
        noise = NoiseModel.from_device(device)
        engine = NoisyDensityMatrixEngine(noise, seed=1)
        reference = engine.run(scheduled)
        variant = randomized.benign_permutation(scheduled, 5)
        result = engine.run(variant)
        assert result.from_cache
        assert result.fingerprint == reference.fingerprint
        assert np.array_equal(result.state.data, reference.state.data)

    def test_dd_variant_shares_longer_canonical_prefix(self):
        """The pulse-deferring canonical key must not *shorten* the shared
        chain prefix of a DD sweep family, and on schedules with commuting
        structure it lengthens it (tests/test_reuse_regression.py pins the
        end-to-end win)."""
        device = randomized.fuzz_device()
        gains = []
        for seed in SEEDS[:4]:
            compiled = randomized.random_compiled(seed, device=device)
            family = randomized.schedule_family(compiled, seed)
            if len(family) < 2:
                continue
            base, variant = family[0], family[1]

            def shared_prefix(a, b):
                length = 0
                for left, right in zip(a, b):
                    if timed_instruction_token(left) != timed_instruction_token(right):
                        break
                    length += 1
                return length

            exact = shared_prefix(base.sorted_instructions(), variant.sorted_instructions())
            canon = shared_prefix(canonical_order(base), canonical_order(variant))
            gains.append(canon - exact)
        # Individual pairs may lose a step or two (deferral can pull a
        # divergent pulse level with a shared gate), but the family-wide
        # prefix sharing must come out ahead.
        assert gains and sum(gains) > 0
