"""Unit tests for the ansatz / micro-benchmark circuit library."""

import math

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    bell_circuit,
    efficient_su2,
    ghz_circuit,
    hahn_echo_microbenchmark,
    idle_window_microbenchmark,
    qaoa_ansatz,
    two_local,
    uccsd_like_ansatz,
)
from repro.exceptions import CircuitError
from repro.simulators import StatevectorSimulator


class TestEfficientSU2:
    @pytest.mark.parametrize("num_qubits,reps", [(4, 2), (6, 2), (4, 6), (6, 4)])
    def test_parameter_count(self, num_qubits, reps):
        ansatz = efficient_su2(num_qubits, reps=reps)
        assert ansatz.num_parameters == 2 * num_qubits * (reps + 1)

    def test_skip_final_rotation_layer(self):
        ansatz = efficient_su2(4, reps=3, skip_final_rotation_layer=True)
        assert ansatz.num_parameters == 2 * 4 * 3

    def test_full_entanglement_cx_count(self):
        ansatz = efficient_su2(4, reps=2, entanglement="full")
        assert ansatz.count_ops()["cx"] == 2 * 6

    def test_circular_entanglement_cx_count(self):
        ansatz = efficient_su2(4, reps=3, entanglement="circular")
        assert ansatz.count_ops()["cx"] == 3 * 4

    def test_linear_entanglement_cx_count(self):
        ansatz = efficient_su2(5, reps=1, entanglement="linear")
        assert ansatz.count_ops()["cx"] == 4

    def test_unknown_entanglement(self):
        with pytest.raises(CircuitError):
            efficient_su2(4, entanglement="star")

    def test_invalid_reps(self):
        with pytest.raises(CircuitError):
            efficient_su2(4, reps=0)

    def test_metadata_recorded(self):
        ansatz = efficient_su2(4, reps=2, entanglement="circular")
        assert ansatz.metadata["ansatz"] == "efficient_su2"
        assert ansatz.metadata["entanglement"] == "circular"

    def test_distinct_parameters_per_instance(self):
        first = efficient_su2(4, reps=2)
        second = efficient_su2(4, reps=2)
        assert first.parameters.isdisjoint(second.parameters)

    def test_zero_angles_give_identity_state(self):
        ansatz = efficient_su2(3, reps=1, entanglement="linear")
        bound = ansatz.bind_parameters([0.0] * ansatz.num_parameters)
        probs = StatevectorSimulator().probabilities(bound)
        assert probs[0] == pytest.approx(1.0)


class TestTwoLocal:
    def test_parameter_count(self):
        ansatz = two_local(3, rotation_gates=("ry",), reps=2)
        assert ansatz.num_parameters == 3 * 3

    def test_cz_entangler(self):
        ansatz = two_local(3, entanglement_gate="cz", reps=1)
        assert "cz" in ansatz.count_ops()

    def test_invalid_entangler(self):
        with pytest.raises(CircuitError):
            two_local(3, entanglement_gate="swap")


class TestUCCSD:
    def test_three_parameters(self):
        ansatz = uccsd_like_ansatz()
        assert ansatz.num_parameters == 3
        assert ansatz.num_qubits == 4

    def test_only_four_qubits_supported(self):
        with pytest.raises(CircuitError):
            uccsd_like_ansatz(num_qubits=6)

    def test_hartree_fock_reference_at_zero_angles(self):
        ansatz = uccsd_like_ansatz()
        bound = ansatz.bind_parameters([0.0, 0.0, 0.0])
        probs = StatevectorSimulator().probabilities(bound)
        # |1100> in big-endian ordering (qubits 0 and 1 occupied).
        assert probs[0b1100] == pytest.approx(1.0, abs=1e-9)

    def test_parameters_change_the_state(self):
        ansatz = uccsd_like_ansatz()
        sim = StatevectorSimulator()
        reference = sim.probabilities(ansatz.bind_parameters([0.0, 0.0, 0.0]))
        excited = sim.probabilities(ansatz.bind_parameters([0.3, -0.2, 0.5]))
        assert not np.allclose(reference, excited)


class TestQAOA:
    RING4 = [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_two_parameters_per_layer(self):
        assert qaoa_ansatz(4, self.RING4, reps=1).num_parameters == 2
        assert qaoa_ansatz(4, self.RING4, reps=3).num_parameters == 6

    def test_zero_angles_give_uniform_superposition(self):
        ansatz = qaoa_ansatz(4, self.RING4, reps=2)
        probs = StatevectorSimulator().probabilities(
            ansatz.bind_parameters([0.0] * ansatz.num_parameters)
        )
        assert np.allclose(probs, 1.0 / 16.0)

    def test_p1_ring_expectation_known_value(self):
        # The p=1 QAOA optimum for MaxCut on a ring cuts 3/4 of the edges in
        # expectation (Farhi et al.): <H> = -4.5 on the 6-ring, attained at
        # (gamma, beta) = (pi/8, 3*pi/8) in this circuit's angle convention.
        from repro.operators import ring_maxcut_hamiltonian
        from repro.vqe import VQE

        edges = [(i, (i + 1) % 6) for i in range(6)]
        hamiltonian = ring_maxcut_hamiltonian(6)
        vqe = VQE(qaoa_ansatz(6, edges, reps=1), hamiltonian, seed=1)
        value = vqe.ideal_objective([math.pi / 8, 3 * math.pi / 8])
        assert value == pytest.approx(-4.5, abs=1e-9)

    def test_weighted_edges_change_the_state(self):
        sim = StatevectorSimulator()
        plain = qaoa_ansatz(3, [(0, 1), (1, 2)], reps=1)
        weighted = qaoa_ansatz(3, [(0, 1), (1, 2)], reps=1, weights=[2.0, 0.5])
        angles = [0.4, 0.3]
        assert not np.allclose(
            sim.probabilities(plain.bind_parameters(angles)),
            sim.probabilities(weighted.bind_parameters(angles)),
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CircuitError):
            qaoa_ansatz(1, [(0, 0)])
        with pytest.raises(CircuitError):
            qaoa_ansatz(4, [])
        with pytest.raises(CircuitError):
            qaoa_ansatz(4, self.RING4, reps=0)
        with pytest.raises(CircuitError):
            qaoa_ansatz(4, [(0, 4)])
        with pytest.raises(CircuitError):
            qaoa_ansatz(4, [(2, 2)])
        with pytest.raises(CircuitError):
            qaoa_ansatz(4, self.RING4, weights=[1.0])


class TestMicrobenchmarks:
    def test_hahn_echo_ideal_outcome_is_zero(self):
        circuit = hahn_echo_microbenchmark(echo_position=0.5)
        probs = StatevectorSimulator().probabilities(circuit.remove_final_measurements())
        assert probs[0] == pytest.approx(1.0)

    def test_hahn_echo_delays_split_by_position(self):
        circuit = hahn_echo_microbenchmark(delay_ns=1000.0, echo_position=0.25)
        delays = [inst.gate.params[0] for inst in circuit.instructions if inst.name == "delay"]
        assert delays == pytest.approx([250.0, 750.0])

    def test_hahn_echo_without_echo_has_single_delay(self):
        circuit = hahn_echo_microbenchmark(delay_ns=500.0, include_echo=False)
        assert circuit.count_ops()["delay"] == 1
        assert circuit.count_ops().get("x", 0) == 0

    def test_hahn_echo_invalid_position(self):
        with pytest.raises(CircuitError):
            hahn_echo_microbenchmark(echo_position=1.5)

    def test_idle_window_microbenchmark_ideal_returns_to_zero(self):
        circuit = idle_window_microbenchmark(theta=math.pi / 3)
        probs = StatevectorSimulator().probabilities(circuit.remove_final_measurements())
        assert probs[0] == pytest.approx(1.0, abs=1e-9)

    def test_ghz_distribution(self):
        probs = StatevectorSimulator().probabilities(ghz_circuit(4))
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_bell_is_two_qubit_ghz(self):
        assert bell_circuit().num_qubits == 2
