"""Tests for idle-window analysis."""

import pytest

from repro.circuits import QuantumCircuit, hahn_echo_microbenchmark, idle_window_microbenchmark
from repro.transpiler import (
    adjacent_single_qubit_gate,
    find_idle_windows,
    schedule_circuit,
    total_idle_time,
    transpile,
    windows_by_qubit,
)


class TestFindIdleWindows:
    def test_tight_circuit_has_no_windows(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.sx(0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        assert find_idle_windows(scheduled) == []

    def test_delay_creates_window(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(2000.0, 0)
        circuit.sx(0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        windows = find_idle_windows(scheduled)
        assert len(windows) == 1
        assert windows[0].duration_ns == pytest.approx(2000.0)
        assert windows[0].position == 0

    def test_short_gaps_filtered_by_min_duration(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(50.0, 0)
        circuit.sx(0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        assert find_idle_windows(scheduled) == []  # default threshold is ~71 ns
        assert len(find_idle_windows(scheduled, min_duration_ns=10.0)) == 1

    def test_window_created_by_partner_qubit_busy(self, device):
        """The 2-qubit micro-benchmark exposes the idle window on the waiting qubit."""
        compiled = transpile(idle_window_microbenchmark(idle_ns=5000.0), device)
        windows = compiled.idle_windows
        assert len(windows) >= 1
        assert max(w.duration_ns for w in windows) >= 4900.0

    def test_pre_runtime_idle_excluded_by_default(self, device):
        circuit = QuantumCircuit(2)
        circuit.sx(0)
        circuit.delay(3000.0, 0)
        circuit.cx(0, 1)
        circuit.measure_all()
        scheduled = schedule_circuit(circuit, device)
        default = find_idle_windows(scheduled)
        with_pre = find_idle_windows(scheduled, include_pre_runtime=True)
        assert len(with_pre) >= len(default)

    def test_windows_carry_physical_qubit(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(1000.0, 0)
        circuit.sx(0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device, physical_qubits=[5])
        windows = find_idle_windows(scheduled)
        assert windows[0].physical_qubit == 5

    def test_indices_are_unique_and_sequential(self, scheduled_su2_4q):
        windows = scheduled_su2_4q.idle_windows
        assert [w.index for w in windows] == list(range(len(windows)))

    def test_total_idle_time(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(1500.0, 0)
        circuit.sx(0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        assert total_idle_time(scheduled) == pytest.approx(1500.0)

    def test_windows_by_qubit_grouping(self, scheduled_su2_4q):
        grouped = windows_by_qubit(scheduled_su2_4q.idle_windows)
        for position, group in grouped.items():
            starts = [w.start_ns for w in group]
            assert starts == sorted(starts)
            assert all(w.position == position for w in group)


class TestAdjacentGate:
    def test_echo_circuit_has_adjacent_x(self, device):
        compiled = transpile(hahn_echo_microbenchmark(delay_ns=4000.0, echo_position=1.0), device)
        windows = compiled.idle_windows
        assert windows
        gate = adjacent_single_qubit_gate(compiled.scheduled, windows[0])
        assert gate is not None
        assert gate.name in ("x", "sx")

    def test_window_bounded_by_cx_has_no_movable_gate(self, device):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.delay(2000.0, 0)
        circuit.delay(2000.0, 1)
        circuit.cx(0, 1)
        circuit.measure_all()
        scheduled = schedule_circuit(circuit, device)
        windows = find_idle_windows(scheduled)
        assert windows
        assert all(adjacent_single_qubit_gate(scheduled, w) is None for w in windows)

    def test_virtual_gates_are_not_movable(self, device):
        circuit = QuantumCircuit(1)
        circuit.sx(0)
        circuit.delay(2000.0, 0)
        circuit.rz(0.3, 0)
        circuit.measure(0, 0)
        scheduled = schedule_circuit(circuit, device)
        windows = find_idle_windows(scheduled)
        # The only adjacent non-virtual gate is the sx *before* the window.
        gate = adjacent_single_qubit_gate(scheduled, windows[0])
        assert gate is not None and gate.name == "sx"
