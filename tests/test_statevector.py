"""Tests for the ideal statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.exceptions import SimulationError
from repro.operators import PauliSum, tfim_hamiltonian
from repro.simulators import StatevectorSimulator


class TestStatevector:
    def test_initial_state(self):
        circuit = QuantumCircuit(2)
        state = StatevectorSimulator().run_statevector(circuit)
        assert state[0] == pytest.approx(1.0)

    def test_x_gate_big_endian(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        probs = StatevectorSimulator().probabilities(circuit)
        assert probs == pytest.approx([0, 0, 1, 0])

    def test_ghz_state(self):
        probs = StatevectorSimulator().probabilities(ghz_circuit(3))
        assert probs[0] == pytest.approx(0.5)
        assert probs[7] == pytest.approx(0.5)

    def test_delays_and_barriers_ignored(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.delay(1000.0, 0)
        circuit.barrier()
        circuit.h(0)
        probs = StatevectorSimulator().probabilities(circuit)
        assert probs[0] == pytest.approx(1.0)

    def test_unbound_parameters_rejected(self):
        from repro.circuits import Parameter

        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("t"), 0)
        with pytest.raises(SimulationError):
            StatevectorSimulator().run_statevector(circuit)

    def test_matches_dense_unitary(self, bound_su2_4q):
        state = StatevectorSimulator().run_statevector(bound_su2_4q)
        expected = bound_su2_4q.to_unitary()[:, 0]
        assert np.allclose(state, expected, atol=1e-9)

    def test_norm_preserved(self, bound_su2_4q):
        state = StatevectorSimulator().run_statevector(bound_su2_4q)
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestCounts:
    def test_counts_total_and_keys(self):
        counts = StatevectorSimulator(seed=1).counts(ghz_circuit(2), shots=500)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"00", "11"}

    def test_counts_respect_measurement_mapping(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.measure(0, 1)
        circuit.measure(1, 0)
        counts = StatevectorSimulator(seed=2).counts(circuit, shots=100)
        # Qubit 0 (value 1) is written into clbit 1, i.e. the right-hand bit.
        assert counts == {"01": 100}

    def test_counts_reproducible_with_seed(self):
        a = StatevectorSimulator(seed=3).counts(ghz_circuit(2), shots=200)
        b = StatevectorSimulator(seed=3).counts(ghz_circuit(2), shots=200)
        assert a == b


class TestExpectation:
    def test_z_expectation(self):
        circuit = QuantumCircuit(1)
        ham = PauliSum({"Z": 1.0})
        assert StatevectorSimulator().expectation(circuit, ham) == pytest.approx(1.0)

    def test_x_expectation_after_h(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        ham = PauliSum({"X": 1.0})
        assert StatevectorSimulator().expectation(circuit, ham) == pytest.approx(1.0)

    def test_measurements_are_stripped(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.measure_all()
        ham = PauliSum({"X": 1.0})
        assert StatevectorSimulator().expectation(circuit, ham) == pytest.approx(1.0)

    def test_width_mismatch(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(SimulationError):
            StatevectorSimulator().expectation(circuit, PauliSum({"Z": 1.0}))

    def test_tfim_expectation_above_ground_energy(self, bound_su2_4q, tfim4):
        value = StatevectorSimulator().expectation(bound_su2_4q, tfim4)
        assert value >= tfim4.ground_energy() - 1e-9
