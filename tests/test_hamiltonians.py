"""Tests for the paper's problem Hamiltonians."""

import numpy as np
import pytest

from repro.exceptions import VQEError
from repro.operators import (
    h2_exact_ground_energy,
    h2_hamiltonian,
    lih_exact_ground_energy,
    lih_hamiltonian,
    lithium_ion_exact_ground_energy,
    lithium_ion_hamiltonian,
    maxcut_hamiltonian,
    ring_maxcut_hamiltonian,
    tfim_exact_ground_energy,
    tfim_hamiltonian,
)


class TestTFIM:
    def test_term_count_periodic(self):
        ham = tfim_hamiltonian(4, periodic=True)
        # 4 X terms + 4 ZZ bonds.
        assert ham.num_terms == 8

    def test_term_count_open(self):
        ham = tfim_hamiltonian(4, periodic=False)
        assert ham.num_terms == 7

    def test_minimum_size(self):
        with pytest.raises(VQEError):
            tfim_hamiltonian(1)

    def test_coefficients(self):
        ham = tfim_hamiltonian(3, j_coupling=2.0, transverse_field=0.5, periodic=False)
        assert ham.coefficient("ZZI") == pytest.approx(-2.0)
        assert ham.coefficient("XII") == pytest.approx(-0.5)

    def test_ground_energy_negative_and_extensive(self):
        e4 = tfim_exact_ground_energy(4)
        e6 = tfim_exact_ground_energy(6)
        assert e4 < 0 and e6 < e4

    def test_critical_point_energy_value(self):
        # At J=h=1 the periodic TFIM ground energy per site approaches -4/pi;
        # for 4 sites the exact value is about -5.226.
        assert tfim_exact_ground_energy(4) == pytest.approx(-5.226, abs=0.01)

    def test_zero_field_ground_energy_is_classical(self):
        ham = tfim_hamiltonian(4, j_coupling=1.0, transverse_field=0.0, periodic=True)
        assert ham.ground_energy() == pytest.approx(-4.0)


class TestH2:
    def test_fifteen_terms(self):
        assert h2_hamiltonian().num_terms == 15

    def test_truncation_drops_small_terms(self):
        truncated = h2_hamiltonian(truncation_threshold=0.05)
        # The four small two-body exchange terms disappear, as in the paper.
        assert truncated.num_terms == 11

    def test_ground_energy_literature_value(self):
        # Electronic ground energy of H2/STO-3G at 0.7414 A is about -1.851 Ha.
        assert h2_exact_ground_energy() == pytest.approx(-1.851, abs=0.01)

    def test_hermitian(self):
        matrix = h2_hamiltonian().to_matrix()
        assert np.allclose(matrix, matrix.conj().T)

    def test_hartree_fock_energy_above_ground(self):
        ham = h2_hamiltonian()
        hf = np.zeros(16)
        hf[0b1100] = 1.0  # qubits 0 and 1 occupied
        hf_energy = ham.expectation_from_statevector(hf)
        assert hf_energy > ham.ground_energy()
        assert hf_energy == pytest.approx(-1.83, abs=0.02)


class TestLithiumIon:
    def test_deterministic_for_fixed_seed(self):
        a = lithium_ion_hamiltonian(seed=1)
        b = lithium_ion_hamiltonian(seed=1)
        assert {p.label: c for p, c in a.terms()} == {p.label: c for p, c in b.terms()}

    def test_different_seeds_differ(self):
        a = lithium_ion_hamiltonian(seed=1)
        b = lithium_ion_hamiltonian(seed=2)
        assert {p.label: c for p, c in a.terms()} != {p.label: c for p, c in b.terms()}

    def test_pre_truncation_term_count(self):
        ham = lithium_ion_hamiltonian(truncation_threshold=0.0)
        assert ham.num_terms == 55

    def test_truncation_reduces_terms(self):
        full = lithium_ion_hamiltonian(truncation_threshold=0.0)
        truncated = lithium_ion_hamiltonian()
        assert truncated.num_terms < full.num_terms

    def test_six_qubits(self):
        assert lithium_ion_hamiltonian().num_qubits == 6

    def test_ground_energy_reproducible(self):
        assert lithium_ion_exact_ground_energy() == pytest.approx(
            lithium_ion_hamiltonian().ground_energy()
        )

    def test_ground_energy_is_negative(self):
        assert lithium_ion_exact_ground_energy() < -5.0

    def test_too_few_qubits_rejected(self):
        with pytest.raises(VQEError):
            lithium_ion_hamiltonian(num_qubits=1)

    def test_impossible_term_count_rejected(self):
        with pytest.raises(VQEError):
            lithium_ion_hamiltonian(num_qubits=2, num_terms=500)

    def test_coefficients_stable_across_refactors(self):
        # The synthetic generator is shared with the LiH surrogate; the Li+
        # draw sequence (and therefore every benchmark that optimises it)
        # must not change.  Spot-pin the offset and the first Z draw.
        ham = lithium_ion_hamiltonian(truncation_threshold=0.0)
        assert ham.identity_coefficient() == pytest.approx(-6.7)
        assert ham.coefficient("ZIIIII") == pytest.approx(0.168, abs=1e-3)


class TestLiH:
    def test_deterministic_for_fixed_seed(self):
        a = lih_hamiltonian()
        b = lih_hamiltonian()
        assert {p.label: c for p, c in a.terms()} == {p.label: c for p, c in b.terms()}

    def test_term_count_and_width(self):
        ham = lih_hamiltonian()
        assert ham.num_qubits == 6
        assert ham.num_terms == 62

    def test_larger_than_h2(self):
        # The point of the workload: more terms and more measurement groups
        # than H2, so the shot collector has something to allocate across.
        h2 = h2_hamiltonian()
        lih = lih_hamiltonian()
        assert lih.num_terms > h2.num_terms
        assert len(lih.group_commuting()) > len(h2.group_commuting())

    def test_differs_from_lithium_ion(self):
        lih = {p.label: c for p, c in lih_hamiltonian().terms()}
        li = {p.label: c for p, c in lithium_ion_hamiltonian(truncation_threshold=0.0).terms()}
        assert lih != li

    def test_ground_energy_reproducible_and_negative(self):
        energy = lih_exact_ground_energy()
        assert energy == pytest.approx(lih_hamiltonian().ground_energy())
        assert energy < -7.8  # below the core offset

    def test_truncation_reduces_terms(self):
        assert lih_hamiltonian(truncation_threshold=0.02).num_terms < 62


class TestMaxCut:
    def test_even_ring_is_fully_cuttable(self):
        # An even ring's max cut severs every edge: ground energy == -n.
        assert ring_maxcut_hamiltonian(6).ground_energy() == pytest.approx(-6.0)
        assert ring_maxcut_hamiltonian(4).ground_energy() == pytest.approx(-4.0)

    def test_ground_energy_is_negative_cut_value(self):
        # Path graph 0-1-2: both edges cuttable with partition {0,2}|{1}.
        ham = maxcut_hamiltonian(3, [(0, 1), (1, 2)])
        assert ham.ground_energy() == pytest.approx(-2.0)

    def test_weighted_edges(self):
        # Triangle with one heavy edge: the best cut takes the heavy edge
        # plus one light edge.
        ham = maxcut_hamiltonian(3, [(0, 1), (1, 2), (0, 2)], weights=[5.0, 1.0, 1.0])
        assert ham.ground_energy() == pytest.approx(-6.0)

    def test_zz_structure(self):
        ham = maxcut_hamiltonian(3, [(0, 1)])
        assert ham.coefficient("ZZI") == pytest.approx(0.5)
        assert ham.identity_coefficient() == pytest.approx(-0.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(VQEError):
            maxcut_hamiltonian(1, [(0, 0)])
        with pytest.raises(VQEError):
            maxcut_hamiltonian(3, [])
        with pytest.raises(VQEError):
            maxcut_hamiltonian(3, [(0, 3)])
        with pytest.raises(VQEError):
            maxcut_hamiltonian(3, [(1, 1)])
        with pytest.raises(VQEError):
            maxcut_hamiltonian(3, [(0, 1)], weights=[1.0, 2.0])
        with pytest.raises(VQEError):
            ring_maxcut_hamiltonian(5)
