"""Tests for the schedule-aware noisy density-matrix simulator."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, hahn_echo_microbenchmark
from repro.exceptions import SimulationError
from repro.simulators import NoiseModel, NoisySimulator, StatevectorSimulator
from repro.transpiler import schedule_circuit, transpile


def _schedule(circuit, device, **kwargs):
    return schedule_circuit(circuit, device, **kwargs)


class TestIdealAgreement:
    def test_ideal_noise_matches_statevector(self, device, ideal_noise):
        circuit = ghz_circuit(3)
        circuit.measure_all()
        result = transpile(circuit, device)
        probs, clbits = NoisySimulator(ideal_noise).measured_probabilities(result.scheduled)
        ideal = StatevectorSimulator().probabilities(ghz_circuit(3))
        assert np.allclose(sorted(probs), sorted(ideal), atol=1e-9)
        assert sorted(clbits) == [0, 1, 2]

    def test_purity_preserved_without_noise(self, device, ideal_noise, scheduled_su2_4q):
        state = NoisySimulator(ideal_noise).run(scheduled_su2_4q.scheduled)
        assert state.purity() == pytest.approx(1.0, abs=1e-9)

    def test_trace_always_one(self, device, device_noise, scheduled_su2_4q):
        state = NoisySimulator(device_noise).run(scheduled_su2_4q.scheduled)
        assert state.trace() == pytest.approx(1.0, abs=1e-8)
        assert state.is_physical(atol=1e-6)


class TestNoiseEffects:
    def test_noise_reduces_purity(self, device, device_noise, scheduled_su2_4q):
        state = NoisySimulator(device_noise).run(scheduled_su2_4q.scheduled)
        assert state.purity() < 0.99

    def test_long_idle_decoheres_superposition(self, device, device_noise):
        short = QuantumCircuit(1)
        short.h(0)
        short.h(0)
        short.measure(0, 0)
        long = QuantumCircuit(1)
        long.h(0)
        long.delay(50000.0, 0)
        long.h(0)
        long.measure(0, 0)
        sim = NoisySimulator(device_noise)
        p_short, _ = sim.measured_probabilities(_schedule(short, device))
        p_long, _ = sim.measured_probabilities(_schedule(long, device))
        assert p_long[0] < p_short[0]

    def test_t1_decay_of_excited_state(self, device, calibration_noise):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.delay(80000.0, 0)
        circuit.measure(0, 0)
        probs, _ = NoisySimulator(calibration_noise).measured_probabilities(_schedule(circuit, device))
        # After ~T1/2 of idling a noticeable fraction has decayed to |0>.
        assert 0.05 < probs[0] < 0.9

    def test_readout_error_flips_outcomes(self, device):
        readout_only = NoiseModel(
            device,
            include_coherent_errors=False,
            include_crosstalk=False,
            include_gate_error=False,
            include_relaxation=False,
            include_readout_error=True,
        )
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0)
        probs, _ = NoisySimulator(readout_only).measured_probabilities(_schedule(circuit, device))
        expected = device.qubits[0].readout_error_01
        assert probs[1] == pytest.approx(expected, abs=1e-9)

    def test_hahn_echo_beats_no_echo(self, device, device_noise):
        sim = NoisySimulator(device_noise)
        with_echo = transpile(hahn_echo_microbenchmark(echo_position=0.5), device)
        without = transpile(hahn_echo_microbenchmark(include_echo=False), device)
        p_echo, _ = sim.measured_probabilities(with_echo.scheduled)
        p_plain, _ = sim.measured_probabilities(without.scheduled)
        assert p_echo[0] > p_plain[0]

    def test_calibration_model_is_insensitive_to_echo_position(self, device, calibration_noise):
        """Markovian-only noise cannot be refocused (the Fig. 9 effect)."""
        sim = NoisySimulator(calibration_noise)
        values = []
        for position in (0.1, 0.5, 0.9):
            compiled = transpile(hahn_echo_microbenchmark(echo_position=position), device)
            probs, _ = sim.measured_probabilities(compiled.scheduled)
            values.append(probs[0])
        assert max(values) - min(values) < 1e-6

    def test_device_model_is_sensitive_to_echo_position(self, device, device_noise):
        sim = NoisySimulator(device_noise)
        values = []
        for position in (0.1, 0.5, 0.9):
            compiled = transpile(hahn_echo_microbenchmark(echo_position=position), device)
            probs, _ = sim.measured_probabilities(compiled.scheduled)
            values.append(probs[0])
        assert max(values) - min(values) > 0.01


class TestInterfaces:
    def test_counts_sum_to_shots(self, device, device_noise, scheduled_su2_4q):
        counts = NoisySimulator(device_noise, seed=4).counts(scheduled_su2_4q.scheduled, shots=512)
        assert sum(counts.values()) == 512

    def test_exact_counts_are_deterministic(self, device, device_noise, scheduled_su2_4q):
        sim = NoisySimulator(device_noise, seed=1)
        a = sim.counts(scheduled_su2_4q.scheduled, shots=1000, exact=True)
        b = sim.counts(scheduled_su2_4q.scheduled, shots=1000, exact=True)
        assert a == b

    def test_missing_measurements_rejected(self, device, device_noise):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        scheduled = _schedule(circuit, device)
        with pytest.raises(SimulationError):
            NoisySimulator(device_noise).measured_probabilities(scheduled)

    def test_too_many_qubits_rejected(self, device, device_noise):
        from repro.transpiler.scheduling import ScheduledCircuit

        scheduled = ScheduledCircuit(
            num_qubits=11, num_clbits=11, device=device,
            physical_qubits=tuple(range(11)),
        )
        with pytest.raises(SimulationError):
            NoisySimulator(device_noise).run(scheduled)
