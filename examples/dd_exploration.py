"""Exploring idle-time error mitigation on micro-benchmarks (Figs. 5 and 6).

This example uses the low-level API directly (no VQE involved) to show the
two physical effects VAQEM exploits:

* the *Hahn-echo position* effect — sweeping an X pulse across a long idle
  window changes the measured fidelity, peaking near the window centre;
* the *DD sequence count* effect — inserting more XY4 sequences into an idle
  window first recovers fidelity and then loses it again, with the optimum
  depending on the (unknown a-priori) noise realisation.

It also contrasts the "calibration" noise model with the full device model to
show why these effects cannot be tuned in simulation (Fig. 9).

Run with::

    python examples/dd_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DDConfig,
    NoiseModel,
    NoisySimulator,
    StatevectorSimulator,
    fake_casablanca,
    hellinger_fidelity,
    idle_window_microbenchmark,
    insert_dd_sequences,
    transpile,
)
from repro.circuits import hahn_echo_microbenchmark
from repro.mitigation import max_sequences_in_window


def echo_position_sweep(device) -> None:
    print("=== X-gate position inside a 28.44 us idle window (Fig. 6) ===")
    simulator = NoisySimulator(NoiseModel.from_device(device), seed=0)
    calibration = NoisySimulator(NoiseModel.from_calibration(device), seed=0)
    for position in np.linspace(0.0, 1.0, 9):
        circuit = hahn_echo_microbenchmark(delay_ns=28440.0, echo_position=float(position))
        compiled = transpile(circuit, device)
        device_probs, _ = simulator.measured_probabilities(compiled.scheduled)
        calib_probs, _ = calibration.measured_probabilities(compiled.scheduled)
        bar = "#" * int(40 * device_probs[0])
        print(
            f"  position {position:4.2f} | device P(0) = {device_probs[0]:.3f} "
            f"| calibration P(0) = {calib_probs[0]:.3f} | {bar}"
        )
    print("  -> the device model peaks mid-window; the calibration model is flat (Fig. 9).\n")


def dd_count_sweep(device) -> None:
    print("=== Number of XY4 sequences in one idle window (Fig. 5) ===")
    circuit = idle_window_microbenchmark(idle_ns=12000.0)
    compiled = transpile(circuit, device)
    window = max(compiled.idle_windows, key=lambda w: w.duration_ns)
    capacity = max_sequences_in_window(window, compiled.scheduled, "xy4")
    ideal_probs = StatevectorSimulator().probabilities(circuit.remove_final_measurements())
    ideal = {format(i, "02b"): p for i, p in enumerate(ideal_probs) if p > 1e-12}
    simulator = NoisySimulator(NoiseModel.from_device(device), seed=0)

    best_count, best_fidelity = 0, 0.0
    for count in range(0, min(capacity, 12) + 1):
        schedule = (
            insert_dd_sequences(compiled.scheduled, window, DDConfig("xy4", count))
            if count
            else compiled.scheduled
        )
        probs, _ = simulator.measured_probabilities(schedule)
        fidelity = hellinger_fidelity(probs, ideal)
        if fidelity > best_fidelity:
            best_count, best_fidelity = count, fidelity
        bar = "#" * int(40 * fidelity)
        print(f"  {count:2d} sequences | fidelity = {fidelity:.3f} | {bar}")
    print(
        f"  -> the optimum here is {best_count} sequences (fidelity {best_fidelity:.3f}); "
        "it depends on the window length and the qubit's noise, which is exactly\n"
        "     why VAQEM tunes it variationally per window.\n"
    )


def main() -> None:
    device = fake_casablanca()
    print(f"Device: {device.name} ({device.num_qubits} qubits)\n")
    echo_position_sweep(device)
    dd_count_sweep(device)


if __name__ == "__main__":
    main()
