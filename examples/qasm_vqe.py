"""External-circuit VQE: an OpenQASM ansatz sweep through the frontend.

The other examples build circuits with the in-process API; this one takes
the path an *external* user (or another toolchain) would: a hardware-
efficient H2 ansatz written as OpenQASM 2.0 text, ingested through the
untrusted-input frontend (``docs/ingestion.md``) — tokenized, parsed,
macro-expanded, decomposed to the native gate set and resource-validated —
and then submitted as a batch of :class:`~repro.frontend.IngestedProgram`
objects straight to ``submit_expectation_batch``: every engine entry point
accepts ingested programs exactly like native circuits.

The sweep binds a small grid of angles into the QASM *text* (what a
text-level integration actually does), ingests each variant, and lets the
asynchronous batch path overlap the noisy simulations.  A deliberately
malformed submission at the end shows the typed rejection an ingesting
service relies on.

Run with::

    python examples/qasm_vqe.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.engine import FakeDeviceEngine
from repro.exceptions import IngestError
from repro.frontend import IngestStats, ingest_qasm
from repro.vqe import get_application

# A two-layer hardware-efficient ansatz over 4 qubits: u3 rotations and crz
# entanglers, both *non-native* gates the decomposer lowers through its
# qelib1-faithful rules.  The angles are format()-ed into the text, as an
# external parameter sweep over QASM files would.
ANSATZ_TEMPLATE = """OPENQASM 2.0;
include "qelib1.inc";
gate layer(t) a, b, c, d
{{
  u3(t, -t/2, t/4) a;
  u3(-t, t/2, t/4) b;
  u3(t/2, -t, t/4) c;
  u3(-t/2, t, t/4) d;
  crz(t) a, b;
  crz(-t) b, c;
  crz(t) c, d;
}}
qreg q[4];
creg c[4];
layer({theta1}) q[0], q[1], q[2], q[3];
layer({theta2}) q[0], q[1], q[2], q[3];
measure q -> c;
"""


def main() -> None:
    application = get_application("UCCSD_H2")
    exact = application.exact_ground_energy()
    print(f"Application : {application.name} (H2, {application.hamiltonian.num_qubits} qubits)")
    print(f"Exact E0    : {exact:.4f} Ha")

    # --- Ingest: QASM text -> validated programs ---------------------------
    grid = [
        (float(t1), float(t2))
        for t1 in np.linspace(-0.6, 0.6, 4)
        for t2 in np.linspace(-0.6, 0.6, 4)
    ]
    stats = IngestStats()
    programs = []
    for theta1, theta2 in grid:
        text = ANSATZ_TEMPLATE.format(theta1=repr(theta1), theta2=repr(theta2))
        program = ingest_qasm(text, name=f"hwe_{theta1:+.2f}_{theta2:+.2f}")
        stats.record(program)
        programs.append(program)
    counters = stats.as_dict()
    print(
        f"\nIngested {counters['programs']} QASM variants: "
        f"{counters['instructions']} native instructions "
        f"({counters['decomposed_gates']} from decomposition, "
        f"{counters['macro_expansions']} macro expansions, "
        f"{counters['source_bytes']} bytes)"
    )

    # --- Execute: ingested programs straight into the async batch path -----
    device = application.device()
    engine = FakeDeviceEngine(device, seed=7)
    # shots=None: exact expectations off the noisy density matrix.
    futures = engine.submit_expectation_batch(programs, application.hamiltonian, shots=None)
    energies = [future.result() for future in futures]
    best = int(np.argmin(energies))
    theta1, theta2 = grid[best]
    print(f"Swept {len(energies)} settings on {device.name} (noisy, exact shots)")
    print(f"Best setting: theta1={theta1:+.2f}, theta2={theta2:+.2f} "
          f"-> {energies[best]:.4f} Ha ({100 * energies[best] / exact:.1f}% of optimal)")

    # --- Reject: malformed text fails typed, never half-executes -----------
    try:
        ingest_qasm(ANSATZ_TEMPLATE)  # un-formatted template: '{{' is not QASM
    except IngestError as error:
        print(f"\nMalformed submission rejected: {type(error).__name__}: {error}")
    engine.close()


if __name__ == "__main__":
    main()
