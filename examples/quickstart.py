"""Quickstart: the execution engine, async submission, then VAQEM end-to-end.

Everything in this reproduction that executes circuits goes through one
backend API — the :class:`~repro.engine.base.ExecutionEngine`:

* ``StatevectorEngine``        — ideal, noise-free runs of logical circuits,
* ``NoisyDensityMatrixEngine`` — schedule-aware noisy runs with a content
  cache and a prefix-reuse fast path,
* ``FakeDeviceEngine``         — "submit to the machine": transpile (cached)
  and execute noisily on a fake IBM device.

Part 1 below drives the engines directly; part 2 submits work
*asynchronously* (futures overlap execution with whatever the caller does
next); part 3 runs the paper's feasible flow (Fig. 11, right), whose
pipeline routes every machine execution through a shared
``NoisyDensityMatrixEngine`` — which is what makes the per-window mitigation
sweeps fast.  Batch methods also take ``parallelism="serial" | "thread" |
"process"`` (plus ``max_workers``) to fan a sweep out across cores with
bit-identical results; ``VAQEMConfig(parallelism="process")`` does the same
for a whole pipeline, and ``VAQEMConfig(pipelined=True)`` (the default)
additionally overlaps each window sweep's candidate generation with
execution.

The full design is documented in ``docs/architecture.md`` (layers, caching,
prefix reuse, the multi-core worker protocol), ``docs/async.md`` (the
futures-returning submission layer), ``docs/scheduler.md`` (the slot-based
batch scheduler that overlaps independent frontends on a shared engine) and
``docs/api.md`` (the public engine API).

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FakeDeviceEngine,
    StatevectorEngine,
    TuningBudget,
    VAQEMConfig,
    VAQEMPipeline,
    get_application,
)


def engine_tour() -> None:
    application = get_application("HW_TFIM_4q_c_6r")
    circuit = application.ansatz.bind_parameters(
        [0.1] * application.num_parameters
    )

    # Ideal execution: exact expectation values from the statevector.
    ideal = StatevectorEngine(seed=7)
    print(f"ideal <H>        : {ideal.expectation(circuit, application.hamiltonian):.4f}")

    # Fake-device execution: transpile + schedule-aware noisy simulation.
    # run() returns sampled counts; expectation() measures the Hamiltonian
    # the way hardware would (per measurement group, with readout error).
    measured = circuit.copy()
    measured.measure_all()
    machine = FakeDeviceEngine(application.device(), seed=7, shots=4096)
    noisy_value = machine.expectation(measured, application.hamiltonian)
    print(f"machine <H>      : {noisy_value:.4f}")

    # Batching: identical circuits are executed once (content-hash cache),
    # near-identical ones share their simulated prefix; results are
    # order-stable and bit-identical to sequential run() calls.
    before = machine.noisy_engine.stats.as_dict()
    results = machine.run_batch([measured] * 8)
    after = machine.noisy_engine.stats.as_dict()
    print(f"batch of 8       : {after['cache_hits'] - before['cache_hits']:.0f} cache hits, "
          f"{after['cache_misses'] - before['cache_misses']:.0f} simulations")


def async_tour() -> None:
    """Submit an H2 sweep asynchronously, do other work, then gather."""
    import numpy as np

    from repro import NoiseModel, gather
    from repro.transpiler import transpile
    from repro.vqe import ExpectationEstimator

    application = get_application("UCCSD_H2")
    device = application.device()
    noise_model = NoiseModel.from_device(device)
    estimator = ExpectationEstimator(noise_model, seed=7)

    # Build a small sweep of bound ansatz circuits around one operating point.
    rng = np.random.default_rng(7)
    points = [rng.uniform(-0.3, 0.3, application.num_parameters) for _ in range(4)]
    schedules = []
    for point in points:
        circuit = application.ansatz.bind_parameters(point)
        circuit.measure_all()
        schedules.append(transpile(circuit, device).scheduled)

    # Submit: the futures return immediately and the engine's batch
    # scheduler executes behind this thread (docs/async.md).
    futures = estimator.submit_batch(schedules, application.hamiltonian)

    # ... overlap: any work here runs while the sweep executes ...
    reference = sum(point.sum() for point in points)

    results = gather(futures)  # ordered like the submission
    energies = [result.value for result in results]
    print("\nAsync H2 sweep (submit -> overlap -> gather)")
    print(f"  energies        : {', '.join(f'{e:.4f}' for e in energies)}")
    print(f"  overlapped work : parameter checksum {reference:+.3f}")

    # Bit-identical to the blocking batch, per the engine seeding contract.
    blocking = [r.value for r in estimator.estimate_batch(schedules, application.hamiltonian)]
    print(f"  async == blocking: {energies == blocking}")

    # Multi-tenant: a second estimator can share the same engine.  Each
    # submits under its own identity, so the scheduler overlaps their
    # independent batches on its per-tier slots and serves both fairly
    # (docs/scheduler.md) — values stay bit-identical regardless.
    second = ExpectationEstimator(noise_model, seed=7, engine=estimator.engine)
    first_futures = estimator.submit_batch(schedules[:2], application.hamiltonian)
    second_futures = second.submit_batch(schedules[2:], application.hamiltonian)
    shared = [r.value for r in gather(first_futures + second_futures)]
    print(f"  two frontends, one engine: {shared == blocking}")
    estimator.engine.close()


def vaqem_flow() -> None:
    application = get_application("HW_TFIM_4q_c_6r")
    print(f"\nApplication : {application.name}")
    print(f"Description : {application.description}")
    print(f"Device      : {application.device().name}")
    print(f"Exact E0    : {application.exact_ground_energy():.4f} (classical reference)")

    config = VAQEMConfig(
        angle_tuning_iterations=200,
        budget=TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=8),
        seed=7,
    )
    pipeline = VAQEMPipeline(application, config)

    angle_result = pipeline.tune_angles()
    print("\nStage 1 — angle tuning (ideal simulation, SPSA + polish)")
    print(f"  tuned ideal objective : {angle_result.optimal_value:.4f}")

    compiled = pipeline.compile()
    print(f"\nStage 2 — compilation for {pipeline.device.name}")
    print(f"  CX depth             : {compiled.cx_depth}")
    print(f"  idle windows found   : {compiled.num_idle_windows}")

    print("\nStage 3 — evaluating mitigation strategies on the noisy device model")
    print("  (window sweeps run batched through the pipeline's shared engine)")
    result = pipeline.run(strategies=("no_em", "mem", "dd_xy4", "vaqem_gs_xy"))
    for strategy in ("no_em", "mem", "dd_xy4", "vaqem_gs_xy"):
        energy = result.energies[strategy]
        fraction = energy / result.optimal_energy
        print(f"  {strategy:12s} energy = {energy: .4f}   ({100 * fraction:.1f}% of optimal)")

    improvement = result.improvement("vaqem_gs_xy", baseline="mem")
    print(f"\nVAQEM GS+XY4 improves the measured objective by {improvement:.2f}x over the MEM baseline.")
    stats = result.engine_stats
    print(
        "Engine totals: "
        f"{stats['executions']:.0f} submissions, "
        f"{100 * stats['hit_rate']:.0f}% cache hits, "
        f"{100 * stats['reuse_fraction']:.0f}% of instruction processing "
        "skipped via prefix reuse."
    )


def main() -> None:
    engine_tour()
    async_tour()
    vaqem_flow()


if __name__ == "__main__":
    main()
