"""Quickstart: run VAQEM end-to-end on one of the paper's benchmarks.

The script mirrors the paper's feasible flow (Fig. 11, right):

1. tune the ansatz gate-rotation angles against the ideal simulator,
2. compile the tuned circuit for the target device (noise-aware layout,
   routing, basis translation, ALAP scheduling) and enumerate idle windows,
3. variationally tune the per-window mitigation configuration (gate
   scheduling + XY4 dynamical decoupling) against the measured objective on
   the noisy device model,
4. report the energies of the baseline and VAQEM configurations.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import TuningBudget, VAQEMConfig, VAQEMPipeline, get_application


def main() -> None:
    application = get_application("HW_TFIM_4q_c_6r")
    print(f"Application : {application.name}")
    print(f"Description : {application.description}")
    print(f"Device      : {application.device().name}")
    print(f"Exact E0    : {application.exact_ground_energy():.4f} (classical reference)")

    config = VAQEMConfig(
        angle_tuning_iterations=200,
        budget=TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=8),
        seed=7,
    )
    pipeline = VAQEMPipeline(application, config)

    angle_result = pipeline.tune_angles()
    print(f"\nStage 1 — angle tuning (ideal simulation, SPSA + polish)")
    print(f"  tuned ideal objective : {angle_result.optimal_value:.4f}")

    compiled = pipeline.compile()
    print(f"\nStage 2 — compilation for {pipeline.device.name}")
    print(f"  CX depth             : {compiled.cx_depth}")
    print(f"  idle windows found   : {compiled.num_idle_windows}")

    print("\nStage 3 — evaluating mitigation strategies on the noisy device model")
    result = pipeline.run(strategies=("no_em", "mem", "dd_xy4", "vaqem_gs_xy"))
    for strategy in ("no_em", "mem", "dd_xy4", "vaqem_gs_xy"):
        energy = result.energies[strategy]
        fraction = energy / result.optimal_energy
        print(f"  {strategy:12s} energy = {energy: .4f}   ({100 * fraction:.1f}% of optimal)")

    improvement = result.improvement("vaqem_gs_xy", baseline="mem")
    print(f"\nVAQEM GS+XY4 improves the measured objective by {improvement:.2f}x over the MEM baseline.")


if __name__ == "__main__":
    main()
