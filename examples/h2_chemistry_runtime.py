"""Molecular chemistry example: H2 with a UCCSD-style ansatz through Runtime.

The paper's two chemistry applications (H2 and Li+) tuned their angles through
IBM Qiskit Runtime, which at the time only supported SPSA, capped sessions at
five hours and was available on a single machine.  This example reproduces
that workflow on the fake 27-qubit Montreal device:

* the angle-tuning objective is executed on the noisy device model and wrapped
  in a :class:`RuntimeSession` that charges wall-clock time per evaluation and
  enforces the SPSA-only / 5-hour constraints,
* error mitigation (gate scheduling + DD) is then tuned per idle window with
  the independent-window tuner, exactly as in the feasible flow.

Run with::

    python examples/h2_chemistry_runtime.py
"""

from __future__ import annotations

from repro import TuningBudget, VAQEMConfig, VAQEMPipeline, get_application
from repro.optimizers import SPSA
from repro.runtime import CircuitTimingModel, RuntimeSession
from repro.vqe import VQE


def main() -> None:
    application = get_application("UCCSD_H2")
    device = application.device()
    exact = application.exact_ground_energy()
    print(f"Application : {application.name} ({application.description})")
    print(f"Device      : {device.name}")
    print(f"Exact E0    : {exact:.4f} Ha (electronic energy, classical reference)")

    # --- Stage 1: angle tuning inside a Runtime session --------------------
    vqe = VQE(application.ansatz, application.hamiltonian, seed=3)
    objective = vqe.noisy_objective_factory(device, shots=None, use_mem=True)
    timing = CircuitTimingModel(shots=4096, num_measurement_groups=5, circuit_duration_us=25.0)
    session = RuntimeSession(objective, timing=timing, machine_name=device.name)
    optimizer = SPSA(maxiter=25, seed=3)

    print("\nStage 1 — angle tuning through the Runtime session (SPSA only)")
    result = session.run_program(optimizer, vqe.initial_point())
    print(f"  evaluations          : {session.num_evaluations}")
    print(f"  session time used    : {session.elapsed_hours:.2f} h of "
          f"{session.constraints.max_session_hours:.1f} h")
    print(f"  tuned noisy objective: {result.optimal_value:.4f} Ha")

    # --- Stage 2: mitigation tuning on the machine model -------------------
    config = VAQEMConfig(
        angle_tuning_iterations=60,
        budget=TuningBudget(dd_resolution=4, gs_resolution=4, max_windows=8),
        seed=3,
    )
    pipeline = VAQEMPipeline(application, config, device=device)
    # Reuse the Runtime-tuned parameters instead of re-tuning in simulation.
    from repro.vqe.vqe import VQEResult
    import numpy as np

    pipeline._angle_result = VQEResult(
        optimal_parameters=np.asarray(result.optimal_parameters),
        optimal_value=float(result.optimal_value),
        history=list(result.history),
        num_evaluations=result.num_evaluations,
        execution_mode="runtime",
    )

    print("\nStage 2 — per-window mitigation tuning (GS + XY4)")
    run = pipeline.run(strategies=("mem", "dd_xy4", "vaqem_gs_xy"))
    for strategy in ("mem", "dd_xy4", "vaqem_gs_xy"):
        energy = run.energies[strategy]
        print(f"  {strategy:12s} energy = {energy: .4f} Ha ({100 * energy / exact:.1f}% of optimal)")
    print(f"\nVAQEM GS+XY4 vs MEM baseline: {run.improvement('vaqem_gs_xy'):.2f}x")


if __name__ == "__main__":
    main()
